// The library's central property: *every* MTTKRP kernel -- five simulated
// GPU kernels and four real CPU kernels, across all formats -- computes
// the same matrix as the sequential COO reference, for every mode, for
// tensors of different orders and sparsity regimes.  Splitting,
// hybridization, flags, and blocking are storage/scheduling choices; they
// must never change semantics.
#include <gtest/gtest.h>

#include <tuple>

#include "bcsf/bcsf.hpp"
#include "kernels/gpu_common.hpp"

namespace bcsf {
namespace {

struct Scenario {
  std::string name;
  PowerLawConfig config;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "balanced3d";
    s.config.dims = {40, 50, 60};
    s.config.target_nnz = 2500;
    s.config.slice_alpha = 2.0;
    s.config.fiber_alpha = 2.0;
    s.config.max_fiber_len = 16;
    s.config.seed = 61;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "heavy_slices3d";
    s.config.dims = {30, 40, 300};
    s.config.target_nnz = 4000;
    s.config.slice_alpha = 0.3;
    s.config.max_slice_frac = 0.4;
    s.config.fiber_alpha = 0.5;
    s.config.max_fiber_len = 250;
    s.config.seed = 62;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "singleton_fibers3d";
    s.config.dims = {300, 200, 100};
    s.config.target_nnz = 3000;
    s.config.fixed_fiber_len = 1;
    s.config.singleton_slice_frac = 0.4;
    s.config.seed = 63;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "order4";
    s.config.dims = {25, 20, 15, 40};
    s.config.target_nnz = 2000;
    s.config.fiber_alpha = 0.8;
    s.config.max_fiber_len = 30;
    s.config.seed = 64;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "order4_singletons";
    s.config.dims = {120, 20, 15, 40};
    s.config.target_nnz = 1500;
    s.config.fixed_fiber_len = 1;
    s.config.singleton_slice_frac = 0.3;
    s.config.seed = 65;
    out.push_back(s);
  }
  return out;
}

class MttkrpEquivalence
    : public ::testing::TestWithParam<std::tuple<int, rank_t>> {};

TEST_P(MttkrpEquivalence, AllKernelsMatchReference) {
  const auto [scenario_idx, rank] = GetParam();
  const Scenario scenario = scenarios()[scenario_idx];
  const SparseTensor x = generate_power_law(scenario.config);
  ASSERT_GT(x.nnz(), 500u);
  const auto factors = make_random_factors(x.dims(), rank, 1234);
  const DeviceModel device = DeviceModel::tiny(4, 16);

  // fp32 kernels accumulate in different orders; scale tolerance with the
  // largest reference magnitude.
  for (index_t mode = 0; mode < x.order(); ++mode) {
    const DenseMatrix ref = mttkrp_reference(x, mode, factors);
    double scale = 1.0;
    for (value_t v : ref.data()) {
      scale = std::max(scale, static_cast<double>(std::abs(v)));
    }
    const double tol = 1e-4 * scale;
    SCOPED_TRACE(scenario.name + " mode " + std::to_string(mode) + " rank " +
                 std::to_string(rank));

    // --- simulated GPU kernels ---
    const CsfTensor csf = build_csf(x, mode);
    EXPECT_LT(ref.max_abs_diff(mttkrp_csf_gpu(csf, factors, device).output),
              tol);
    const BcsfTensor bcsf = build_bcsf_from_csf(csf, BcsfOptions{});
    EXPECT_LT(ref.max_abs_diff(mttkrp_bcsf_gpu(bcsf, factors, device).output),
              tol);
    const HbcsfTensor hb = build_hbcsf(x, mode);
    EXPECT_LT(ref.max_abs_diff(mttkrp_hbcsf_gpu(hb, factors, device).output),
              tol);
    EXPECT_LT(
        ref.max_abs_diff(mttkrp_coo_gpu(x, mode, factors, device).output),
        tol);
    const FcooTensor fcoo = build_fcoo(x, mode);
    EXPECT_LT(ref.max_abs_diff(mttkrp_fcoo_gpu(fcoo, factors, device).output),
              tol);
    const CslTensor csl = build_csl(x, mode);
    EXPECT_LT(ref.max_abs_diff(mttkrp_csl_gpu(csl, factors, device).output),
              tol);

    // --- real CPU kernels ---
    EXPECT_LT(ref.max_abs_diff(mttkrp_coo_cpu(x, mode, factors)), tol);
    EXPECT_LT(ref.max_abs_diff(mttkrp_csf_cpu(csf, factors)), tol);
    EXPECT_LT(ref.max_abs_diff(mttkrp_csl_cpu(csl, factors)), tol);
    EXPECT_LT(ref.max_abs_diff(mttkrp_csf_cpu_tiled(csf, factors, 4)), tol);
    const HicooTensor hicoo = build_hicoo(x);
    EXPECT_LT(ref.max_abs_diff(mttkrp_hicoo_cpu(hicoo, mode, factors)), tol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MttkrpEquivalence,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values<rank_t>(1, 8, 32)),
    [](const ::testing::TestParamInfo<std::tuple<int, rank_t>>& info) {
      return scenarios()[std::get<0>(info.param)].name + "_r" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MttkrpValidation, RejectsBadFactors) {
  const SparseTensor x = generate_uniform({5, 6, 7}, 30, 1);
  auto factors = make_random_factors(x.dims(), 4, 2);
  factors.pop_back();
  EXPECT_THROW(mttkrp_reference(x, 0, factors), Error);

  auto wrong_rows = make_random_factors({5, 6, 8}, 4, 2);
  EXPECT_THROW(mttkrp_reference(x, 0, wrong_rows), Error);

  auto factors2 = make_random_factors(x.dims(), 4, 2);
  EXPECT_THROW(mttkrp_reference(x, 3, factors2), Error);
}

TEST(MttkrpValidation, EmptyTensorGivesZeroOutput) {
  const SparseTensor x({4, 5, 6});
  const auto factors = make_random_factors(x.dims(), 3, 7);
  const DenseMatrix ref = mttkrp_reference(x, 1, factors);
  EXPECT_EQ(ref.rows(), 5u);
  EXPECT_DOUBLE_EQ(ref.frob_norm(), 0.0);
  const GpuMttkrpResult r =
      mttkrp_hbcsf_gpu(build_hbcsf(x, 1), factors, DeviceModel::tiny());
  EXPECT_DOUBLE_EQ(r.output.frob_norm(), 0.0);
}

// Every format in the FormatRegistry catalogue -- GPU, CPU and meta --
// must agree with the reference through the plan interface, on 3- and
// 4-mode tensors, for every mode.  This is the property that makes the
// registry safe to enumerate blindly from cpd_als and the benches.
class RegistryEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RegistryEquivalence, EveryRegisteredFormatMatchesReference) {
  const Scenario scenario = scenarios()[GetParam()];
  const SparseTensor x = generate_power_law(scenario.config);
  const rank_t rank = 8;
  const auto factors = make_random_factors(x.dims(), rank, 1234);

  PlanOptions opts;
  opts.device = DeviceModel::tiny(4, 16);

  const FormatRegistry& registry = FormatRegistry::instance();
  ASSERT_FALSE(registry.names().empty());
  for (index_t mode = 0; mode < x.order(); ++mode) {
    const DenseMatrix ref = mttkrp_reference(x, mode, factors);
    double scale = 1.0;
    for (value_t v : ref.data()) {
      scale = std::max(scale, static_cast<double>(std::abs(v)));
    }
    const double tol = 1e-4 * scale;

    for (const std::string& name : registry.names()) {
      SCOPED_TRACE(scenario.name + " format " + name + " mode " +
                   std::to_string(mode));
      const PlanPtr plan = registry.create(name, x, mode, opts);
      ASSERT_NE(plan, nullptr);
      EXPECT_EQ(plan->mode(), mode);
      EXPECT_GE(plan->build_seconds(), 0.0);
      EXPECT_GT(plan->storage_bytes(), 0u);
      // Plans are build-once run-many: two runs, identical output.
      const PlanRunResult first = plan->run(factors);
      EXPECT_LT(ref.max_abs_diff(first.output), tol);
      EXPECT_DOUBLE_EQ(first.output.max_abs_diff(plan->run(factors).output),
                       0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegistryEquivalence, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return scenarios()[info.param].name;
                         });

// The simulated cost model is value-independent, so the serving-path GPU
// kernels memoize it per rank (SimMemo, kernels/gpu_common.hpp): the
// first call runs the cache/scheduler simulation, repeats replay the
// identical numeric schedule and reuse the stored report.  These tests
// pin both halves of that contract at the kernel level, where the memo is
// threaded explicitly: bitwise-equal outputs AND bit-identical reports,
// across ranks sharing one memo (the serving mix interleaves rank-R
// MTTKRP/FIT with rank-1 TTV on the same plan) and both combine modes.
void expect_same_report(const SimReport& a, const SimReport& b) {
  EXPECT_EQ(a.kernel, b.kernel);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.total_flops, b.total_flops);
  EXPECT_DOUBLE_EQ(a.l2_hit_rate_pct, b.l2_hit_rate_pct);
  EXPECT_EQ(a.num_blocks, b.num_blocks);
  EXPECT_EQ(a.num_warps, b.num_warps);
  EXPECT_EQ(a.atomic_ops, b.atomic_ops);
}

TEST(SimMemoEquivalence, BcsfRepeatCallsAreBitwiseWithCachedReports) {
  const Scenario scenario = scenarios()[1];  // heavy_slices3d: split blocks
  const SparseTensor x = generate_power_law(scenario.config);
  const DeviceModel device = DeviceModel::tiny(4, 16);
  for (OutputCombine combine :
       {OutputCombine::kPerFiber, OutputCombine::kPerSliceShared}) {
    const BcsfTensor bcsf = build_bcsf(x, 1, BcsfOptions{});
    SimMemo memo;
    for (rank_t rank : {rank_t{8}, rank_t{1}, rank_t{8}}) {
      SCOPED_TRACE("combine " + std::to_string(static_cast<int>(combine)) +
                   " rank " + std::to_string(rank));
      const auto factors = make_random_factors(x.dims(), rank, 77);
      const GpuMttkrpResult costed =
          mttkrp_bcsf_gpu(bcsf, factors, device, combine, nullptr);
      const GpuMttkrpResult first =
          mttkrp_bcsf_gpu(bcsf, factors, device, combine, &memo);
      const GpuMttkrpResult repeat =
          mttkrp_bcsf_gpu(bcsf, factors, device, combine, &memo);
      // The numeric replay must match the costed pass bitwise, and the
      // cached report must be indistinguishable from a fresh simulation.
      EXPECT_DOUBLE_EQ(costed.output.max_abs_diff(first.output), 0.0);
      EXPECT_DOUBLE_EQ(costed.output.max_abs_diff(repeat.output), 0.0);
      expect_same_report(costed.report, first.report);
      expect_same_report(costed.report, repeat.report);
      EXPECT_GT(repeat.report.seconds, 0.0);
      EXPECT_GT(repeat.report.num_blocks, 0u);
    }
  }
}

TEST(SimMemoEquivalence, CooRepeatCallsAreBitwiseWithCachedReports) {
  const Scenario scenario = scenarios()[0];
  const SparseTensor x = generate_power_law(scenario.config);
  const DeviceModel device = DeviceModel::tiny(4, 16);
  for (index_t mode = 0; mode < x.order(); ++mode) {
    SimMemo memo;
    for (rank_t rank : {rank_t{8}, rank_t{1}}) {
      SCOPED_TRACE("mode " + std::to_string(mode) + " rank " +
                   std::to_string(rank));
      const auto factors = make_random_factors(x.dims(), rank, 78);
      const GpuMttkrpResult costed =
          mttkrp_coo_gpu(x, mode, factors, device, nullptr);
      const GpuMttkrpResult first =
          mttkrp_coo_gpu(x, mode, factors, device, &memo);
      const GpuMttkrpResult repeat =
          mttkrp_coo_gpu(x, mode, factors, device, &memo);
      EXPECT_DOUBLE_EQ(costed.output.max_abs_diff(first.output), 0.0);
      EXPECT_DOUBLE_EQ(costed.output.max_abs_diff(repeat.output), 0.0);
      expect_same_report(costed.report, first.report);
      expect_same_report(costed.report, repeat.report);
      EXPECT_GT(repeat.report.atomic_ops, 0u);
    }
  }
}

TEST(MttkrpRegistry, GpuCatalogueBuildsAndRunsByName) {
  const SparseTensor x = generate_uniform({20, 20, 20}, 500, 9);
  const auto factors = make_random_factors(x.dims(), 8, 10);
  const DenseMatrix ref = mttkrp_reference(x, 0, factors);
  PlanOptions opts;
  opts.device = DeviceModel::tiny();
  const std::vector<std::string> gpu_names =
      FormatRegistry::instance().names(PlanKind::kGpu);
  EXPECT_EQ(gpu_names.size(), 6u);
  for (const std::string& name : gpu_names) {
    const PlanPtr plan = FormatRegistry::instance().create(name, x, 0, opts);
    EXPECT_LT(ref.max_abs_diff(plan->run(factors).output), 1e-2) << name;
    EXPECT_GE(plan->build_seconds(), 0.0);
  }
}

}  // namespace
}  // namespace bcsf
