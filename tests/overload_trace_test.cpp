// Overload-under-record regression test (DESIGN.md §9/§10): a trace
// recorded while the server is shedding load must (a) preserve the
// rejected count -- kOverloaded replies are the ONLY trace of a rejected
// query, since admission runs before the recorder -- and (b) replay
// cleanly and deterministically in-process, where no admission control
// exists.
//
// Overload is manufactured deterministically, not with sleeps: the
// server runs ONE worker with max_in_flight=1, and an injected
// ConcurrentPlanCache::BuildFn blocks the very first plan build on a
// test-controlled gate.  The first query is admitted and then parks the
// sole worker inside the gated build; every query pipelined behind it on
// the same connection reaches admission with the in-flight count already
// at the cap, so each is rejected with kOverloaded -- no timing window
// anywhere.
//
// Carries the `concurrency` ctest label: server reader/writer threads,
// the blocked worker, and the test thread all interleave under TSan.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/format_registry.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serve/tensor_op_service.hpp"
#include "serve_test_util.hpp"
#include "trace/trace.hpp"

namespace bcsf::trace {
namespace {

std::string test_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "/tmp/bcsf_overload_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(counter.fetch_add(1)) + ".trace";
}

std::string test_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/bcsf_overload_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

template <typename Getter>
bool wait_for(Getter getter, std::uint64_t want, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (getter() < want) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// The service shape shared by the recording server and the in-process
/// replay: one worker, one shard, no background work -- every response
/// field is then a pure function of the request sequence.
ServeOptions overload_serve_options() {
  ServeOptions opts;
  opts.workers = 1;
  opts.shards = 1;
  opts.enable_upgrade = false;
  opts.enable_compaction = false;
  return opts;
}

TEST(OverloadTrace, RecordedOverloadReplaysWithRejectedCountPreserved) {
  constexpr int kRejectedQueries = 4;
  const std::vector<index_t> dims{30, 24, 18};
  const SparseTensor tensor = serve_test::exact_tensor(dims, 1800, 91);
  const auto factors = serve_test::exact_factors(dims, 5, 92);
  const std::string trace_path = test_path("overload");

  // The gate: the first build waits here.  shared_future so the build_fn
  // copy is cheap and a second build (there is none in this config, but
  // the fn must stay reusable) sails through once released.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();

  net::ResultMsg live_result;
  {
    net::ServerOptions opts;
    opts.unix_path = test_socket_path();
    opts.serve = overload_serve_options();
    opts.serve.build_fn = [gate](const std::string& format,
                                 const SparseTensor& t, index_t mode,
                                 const PlanOptions& plan_opts) {
      gate.wait();
      return FormatRegistry::instance().create(format, t, mode, plan_opts);
    };
    opts.max_in_flight = 1;
    opts.record_path = trace_path;
    net::TensorServer server(opts);

    net::TensorClient client(server.unix_path());
    client.register_tensor("hot", tensor);

    net::QueryMsg query;
    query.tensor = "hot";
    query.mode = 0;
    query.op = OpKind::kMttkrp;
    query.factors = *factors;

    // Query 1 is admitted (in-flight 0 -> 1) and parks the single worker
    // inside the gated build.  The reader dispatches frames of one
    // connection strictly in order, so by the time each follow-up query
    // reaches admission the in-flight count is already at the cap.
    std::future<net::Frame> first = client.query_async(query);
    std::vector<std::future<net::Frame>> shed;
    for (int i = 0; i < kRejectedQueries; ++i) {
      shed.push_back(client.query_async(query));
    }
    ASSERT_TRUE(wait_for([&] { return server.stats().rejected; },
                         kRejectedQueries))
        << "server never rejected the pipelined burst";

    release.set_value();  // un-park the worker; query 1 completes

    // FIFO writer: the pending first response leaves before the shed
    // replies, but all five futures resolve once it does.
    live_result = net::TensorClient::result_of(first.get());
    for (auto& f : shed) {
      net::Frame frame = f.get();
      EXPECT_EQ(frame.type, net::MsgType::kOverloaded);
    }
    EXPECT_EQ(server.stats().rejected,
              static_cast<std::uint64_t>(kRejectedQueries));
    server.stop();
    ::unlink(opts.unix_path.c_str());
  }  // server scope: trace file is complete and closed

  // Replay the trace in-process.  The rejected queries were never
  // recorded as requests, so the replay sees 2 events (register + the
  // one admitted query) -- but the kOverloaded replies in the trace
  // carry the rejected count through.
  TensorOpService service(overload_serve_options());
  TraceReader reader(trace_path);
  const ReplayResult replay = replay_trace(service, reader);
  EXPECT_EQ(replay.events, 2u);
  EXPECT_EQ(replay.rejected, static_cast<std::size_t>(kRejectedQueries));
  ASSERT_FALSE(replay.log.empty());

  // Determinism: a second fresh replay produces the identical log.
  TensorOpService service2(overload_serve_options());
  TraceReader reader2(trace_path);
  const ReplayResult again = replay_trace(service2, reader2);
  EXPECT_TRUE(replay.log == again.log) << "overload trace replay diverged";

  // The replayed answer is bitwise the live answer: walk the replay log
  // to its kResult frame and compare payload-for-payload (exact-grid
  // inputs; same service shape; recorded request carries the client's
  // id, so even the ids line up).
  bool found_result = false;
  std::size_t pos = 0;
  while (pos + 5 <= replay.log.size()) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(replay.log[pos]) |
        (static_cast<std::uint32_t>(replay.log[pos + 1]) << 8) |
        (static_cast<std::uint32_t>(replay.log[pos + 2]) << 16) |
        (static_cast<std::uint32_t>(replay.log[pos + 3]) << 24);
    const auto type = static_cast<net::MsgType>(replay.log[pos + 4]);
    ASSERT_LE(pos + 5 + len, replay.log.size());
    if (type == net::MsgType::kResult) {
      const net::ResultMsg replayed = net::decode_result(
          std::span<const std::uint8_t>(replay.log).subspan(pos + 5, len));
      EXPECT_EQ(replayed.id, live_result.id);
      EXPECT_TRUE(serve_test::bitwise_equal(live_result.output,
                                            replayed.output));
      found_result = true;
    }
    pos += 5 + len;
  }
  EXPECT_TRUE(found_result) << "replay log holds no kResult frame";

  ::unlink(trace_path.c_str());
}

// A trace recorded WITHOUT overload reports rejected == 0 -- the counter
// counts kOverloaded frames, not queries.
TEST(OverloadTrace, CleanTraceReportsZeroRejected) {
  const std::vector<index_t> dims{30, 24, 18};
  const SparseTensor tensor = serve_test::exact_tensor(dims, 1200, 93);
  const auto factors = serve_test::exact_factors(dims, 5, 94);
  const std::string trace_path = test_path("clean");

  {
    net::ServerOptions opts;
    opts.unix_path = test_socket_path();
    opts.serve = overload_serve_options();
    opts.record_path = trace_path;
    net::TensorServer server(opts);
    net::TensorClient client(server.unix_path());
    client.register_tensor("calm", tensor);
    net::QueryMsg query;
    query.tensor = "calm";
    query.mode = 1;
    query.factors = *factors;
    (void)client.query(query);
    server.stop();
    ::unlink(opts.unix_path.c_str());
  }

  TensorOpService service(overload_serve_options());
  TraceReader reader(trace_path);
  const ReplayResult replay = replay_trace(service, reader);
  EXPECT_EQ(replay.events, 2u);
  EXPECT_EQ(replay.rejected, 0u);
  ::unlink(trace_path.c_str());
}

}  // namespace
}  // namespace bcsf::trace
