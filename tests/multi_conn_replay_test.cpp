// Multi-connection socket replay vs strict in-process replay (trace/
// trace.hpp, DESIGN.md §9): the same recorded workload driven through N
// concurrent pipelined TensorClients against a live TensorServer must
// produce the SAME normalized response log as the one-event-at-a-time
// in-process replay -- with exact-grid inputs every response is bitwise
// reproducible no matter how the pipelined queries interleave on the
// server's worker pool.  This is the test that makes replay_trace_sockets
// an oracle: any nondeterminism on the serving path (racy upgrade swap,
// iteration-order dependence, uninitialized output rows) shows up as a
// byte mismatch here.
//
// Carries the `concurrency` ctest label: the socket replay keeps several
// queries outstanding across connections, so the server's reader/writer
// threads and the service's shard fan-out all run concurrently under
// TSan in CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/server.hpp"
#include "net/wire.hpp"
#include "serve/tensor_op_service.hpp"
#include "serve_test_util.hpp"
#include "trace/trace.hpp"

namespace bcsf::trace {
namespace {

std::string test_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "/tmp/bcsf_multiconn_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(counter.fetch_add(1)) + ".trace";
}

std::string test_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/bcsf_multiconn_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// The shared service configuration: the in-process replay service and
/// the socket-fronted server must be configured IDENTICALLY or the
/// comparison tests config differences, not determinism.  Compaction
/// stays off so delta_nnz/snapshot_version do not depend on when a
/// background merge lands relative to a pipelined wave.
ServeOptions replay_serve_options() {
  ServeOptions opts;
  opts.workers = 3;
  opts.shards = 2;
  opts.enable_upgrade = true;
  opts.upgrade_threshold = 2;
  opts.enable_compaction = false;
  return opts;
}

/// Records a two-tenant workload: registers, MTTKRP/TTV queries across
/// modes, interleaved update batches, and one query against a tensor
/// that was never registered (the error path must replay byte-for-byte
/// too).  Only REQUEST frames are recorded, exactly what the replayers
/// consume.
void record_workload(const std::string& path) {
  const std::vector<index_t> dims{36, 28, 20};
  const SparseTensor alpha = serve_test::exact_tensor(dims, 2600, 71);
  const SparseTensor beta = serve_test::exact_tensor(dims, 1400, 72);
  const auto factors = serve_test::exact_factors(dims, 6, 73);
  const auto vectors = serve_test::exact_factors(dims, 1, 74);
  std::mt19937 rng(75);

  TraceRecorder recorder(path);
  std::uint64_t id = 0;

  auto record_register = [&](const std::string& name,
                             const SparseTensor& tensor) {
    net::RegisterMsg msg;
    msg.id = ++id;
    msg.name = name;
    msg.tensor = tensor;
    recorder.record(net::MsgType::kRegister, net::encode_register(msg));
  };
  auto record_update = [&](const std::string& name, offset_t nnz) {
    net::UpdateMsg msg;
    msg.id = ++id;
    msg.name = name;
    msg.updates = serve_test::exact_batch(dims, nnz, rng);
    recorder.record(net::MsgType::kUpdate, net::encode_update(msg));
  };
  auto record_query = [&](const std::string& name, index_t mode, OpKind op) {
    net::QueryMsg msg;
    msg.id = ++id;
    msg.tensor = name;
    msg.mode = mode;
    msg.op = op;
    msg.factors = op == OpKind::kTtv ? *vectors : *factors;
    recorder.record(net::MsgType::kQuery, net::encode_query(msg));
  };

  record_register("alpha", alpha);
  record_register("beta", beta);
  // A pipelined wave per tenant and mode, an update barrier, more waves:
  // enough traffic to cross the upgrade threshold on the hot modes while
  // updates keep delta state in play.
  for (index_t mode = 0; mode < 3; ++mode) {
    record_query("alpha", mode, OpKind::kMttkrp);
    record_query("beta", mode, OpKind::kMttkrp);
  }
  record_update("alpha", 500);
  for (index_t mode = 0; mode < 3; ++mode) {
    record_query("alpha", mode, OpKind::kMttkrp);
    record_query("alpha", mode, OpKind::kTtv);
  }
  record_update("beta", 300);
  record_query("ghost", 0, OpKind::kMttkrp);  // never registered -> kError
  for (index_t mode = 0; mode < 3; ++mode) {
    record_query("beta", mode, OpKind::kMttkrp);
    record_query("alpha", mode, OpKind::kMttkrp);
  }
}

ReplayResult replay_in_process(const std::string& trace_path) {
  TensorOpService service(replay_serve_options());
  TraceReader reader(trace_path);
  return replay_trace(service, reader);
}

ReplayResult replay_over_sockets(const std::string& trace_path,
                                 std::size_t connections) {
  net::ServerOptions opts;
  opts.unix_path = test_socket_path();
  opts.serve = replay_serve_options();
  net::TensorServer server(opts);
  TraceReader reader(trace_path);
  ReplayResult result =
      replay_trace_sockets(server.unix_path(), reader, connections);
  // No admission pressure was configured, so every query must have been
  // accepted -- a rejection would silently shrink the log.
  EXPECT_EQ(server.stats().rejected, 0u);
  server.stop();
  ::unlink(opts.unix_path.c_str());
  return result;
}

// ---------------------------------------------------------------------------
// The headline oracle: N pipelined connections against a live server
// reproduce the strict one-event-at-a-time in-process replay bitwise.
// ---------------------------------------------------------------------------

TEST(MultiConnReplay, FourConnectionsMatchInProcessReplayByteForByte) {
  const std::string trace_path = test_path("oracle");
  record_workload(trace_path);

  const ReplayResult in_process = replay_in_process(trace_path);
  const ReplayResult sockets = replay_over_sockets(trace_path, 4);

  EXPECT_EQ(in_process.events, sockets.events);
  EXPECT_EQ(in_process.rejected, 0u);
  EXPECT_EQ(sockets.rejected, 0u);
  ASSERT_FALSE(in_process.log.empty());

  // The socket log is emitted pre-normalized (race-dependent ResultMsg
  // fields fixed); run the in-process log through the same normalizer
  // and the two must agree byte for byte.
  const std::vector<std::uint8_t> normalized =
      normalize_replay_log(in_process.log);
  EXPECT_EQ(normalized.size(), sockets.log.size());
  EXPECT_TRUE(normalized == sockets.log)
      << "socket replay diverged from in-process replay";

  ::unlink(trace_path.c_str());
}

// ---------------------------------------------------------------------------
// Connection-count invariance: 1, 2, and 4 pipelined connections are
// just different interleavings of the same requests, so the normalized
// logs must be identical.  (connections=1 still pipelines queries on the
// single socket.)
// ---------------------------------------------------------------------------

TEST(MultiConnReplay, ConnectionCountDoesNotChangeTheLog) {
  const std::string trace_path = test_path("conns");
  record_workload(trace_path);

  const ReplayResult one = replay_over_sockets(trace_path, 1);
  const ReplayResult two = replay_over_sockets(trace_path, 2);
  const ReplayResult four = replay_over_sockets(trace_path, 4);

  ASSERT_FALSE(one.log.empty());
  EXPECT_TRUE(one.log == two.log) << "2-connection replay diverged";
  EXPECT_TRUE(one.log == four.log) << "4-connection replay diverged";
  EXPECT_EQ(one.events, four.events);

  ::unlink(trace_path.c_str());
}

// ---------------------------------------------------------------------------
// The normalizer itself: idempotent, preserves frame count and
// non-result frames, and rejects a corrupt log rather than misparsing.
// ---------------------------------------------------------------------------

TEST(MultiConnReplay, NormalizeReplayLogIsIdempotentAndStrict) {
  const std::string trace_path = test_path("norm");
  record_workload(trace_path);

  const ReplayResult in_process = replay_in_process(trace_path);
  const std::vector<std::uint8_t> once = normalize_replay_log(in_process.log);
  const std::vector<std::uint8_t> twice = normalize_replay_log(once);
  EXPECT_TRUE(once == twice) << "normalization is not idempotent";

  // Truncating the log mid-frame must throw, not return a short log.
  std::vector<std::uint8_t> truncated = once;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(normalize_replay_log(truncated), net::ProtocolError);

  ::unlink(trace_path.c_str());
}

}  // namespace
}  // namespace bcsf::trace
