// Tests for the CSR/DCSR matrix substrate (§III-B's ancestry of CSF) and
// for the per-fiber vs per-slice output-combine modes of the B-CSF
// engine.
#include <gtest/gtest.h>

#include "core/factors.hpp"
#include "formats/csf.hpp"
#include "formats/dcsr.hpp"
#include "kernels/mttkrp.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

/// Hyper-sparse matrix: 1000 rows, only 5 non-empty -- DCSR's home turf.
SparseTensor hyper_sparse() {
  SparseTensor m({1000, 50});
  const index_t entries[][2] = {{3, 10}, {3, 20}, {400, 0}, {401, 49},
                                {402, 5}, {999, 25}, {999, 26}, {999, 27}};
  value_t v = 1.0F;
  for (const auto& e : entries) m.push_back({e, 2}, v++);
  return m;
}

TEST(Csr, BuildAndAccess) {
  const CsrMatrix m = build_csr(hyper_sparse());
  m.validate();
  EXPECT_EQ(m.rows(), 1000u);
  EXPECT_EQ(m.nnz(), 8u);
  EXPECT_EQ(m.row_end(3) - m.row_begin(3), 2u);
  EXPECT_EQ(m.row_end(0) - m.row_begin(0), 0u);  // empty row
  EXPECT_EQ(m.row_end(999) - m.row_begin(999), 3u);
}

TEST(Dcsr, CompressesEmptyRows) {
  const DcsrMatrix m = build_dcsr(hyper_sparse());
  m.validate();
  EXPECT_EQ(m.num_nonempty_rows(), 5u);
  EXPECT_EQ(m.row_index(0), 3u);
  EXPECT_EQ(m.row_index(4), 999u);
}

TEST(Dcsr, StorageBeatsCsrOnHyperSparse) {
  // "for hyper-sparse matrices ... DCSR is a more efficient choice".
  const SparseTensor x = hyper_sparse();
  const CsrMatrix csr = build_csr(x);
  const DcsrMatrix dcsr = build_dcsr(x);
  EXPECT_LT(dcsr.index_storage_bytes(), csr.index_storage_bytes() / 10);
}

TEST(Dcsr, CsrWinsWhenAllRowsOccupied) {
  const SparseTensor x = generate_uniform({40, 40}, 800, 7);
  const CsrMatrix csr = build_csr(x);
  const DcsrMatrix dcsr = build_dcsr(x);
  // With every row non-empty, DCSR pays the extra row-index array.
  EXPECT_GE(dcsr.index_storage_bytes() + 4, csr.index_storage_bytes());
}

TEST(Dcsr, SpmvMatchesCsrAndDense) {
  const SparseTensor x = generate_uniform({30, 20}, 200, 8);
  const CsrMatrix csr = build_csr(x);
  const DcsrMatrix dcsr = build_dcsr(x);
  std::vector<value_t> vec(20);
  for (index_t i = 0; i < 20; ++i) vec[i] = 0.1F * static_cast<value_t>(i + 1);

  std::vector<value_t> dense(30, 0.0F);
  for (offset_t z = 0; z < x.nnz(); ++z) {
    dense[x.coord(0, z)] += x.value(z) * vec[x.coord(1, z)];
  }
  std::vector<value_t> y1(30);
  std::vector<value_t> y2(30);
  csr.spmv(vec, y1);
  dcsr.spmv(vec, y2);
  for (index_t r = 0; r < 30; ++r) {
    EXPECT_NEAR(y1[r], dense[r], 1e-4);
    EXPECT_NEAR(y2[r], dense[r], 1e-4);
  }
}

TEST(Dcsr, MatchesOrder2Csf) {
  // DCSR is exactly the order-2 CSF: same non-empty row set, same storage
  // accounting (2S + 2F + M with S = F).
  const SparseTensor x = hyper_sparse();
  const DcsrMatrix dcsr = build_dcsr(x);
  const CsfTensor csf = build_csf(x, 0);
  EXPECT_EQ(dcsr.num_nonempty_rows(), csf.num_slices());
  EXPECT_EQ(dcsr.index_storage_bytes(), csf.index_storage_bytes());
}

TEST(Dcsr, RejectsNonMatrix) {
  const SparseTensor t = generate_uniform({5, 5, 5}, 20, 9);
  EXPECT_THROW(build_csr(t), Error);
  EXPECT_THROW(build_dcsr(t), Error);
}

TEST(OutputCombine, ModesProduceSameResult) {
  PowerLawConfig cfg;
  cfg.dims = {40, 50, 200};
  cfg.target_nnz = 5000;
  cfg.slice_alpha = 0.5;
  cfg.max_slice_frac = 0.3;
  cfg.fiber_alpha = 0.6;
  cfg.max_fiber_len = 150;
  cfg.seed = 401;
  const SparseTensor x = generate_power_law(cfg);
  const auto factors = make_random_factors(x.dims(), 8, 402);
  const DeviceModel device = DeviceModel::tiny(4, 16);
  for (index_t mode = 0; mode < 3; ++mode) {
    const DenseMatrix ref = mttkrp_reference(x, mode, factors);
    const BcsfTensor b = build_bcsf(x, mode);
    const GpuMttkrpResult per_fiber =
        mttkrp_bcsf_gpu(b, factors, device, OutputCombine::kPerFiber);
    const GpuMttkrpResult per_slice =
        mttkrp_bcsf_gpu(b, factors, device, OutputCombine::kPerSliceShared);
    EXPECT_LT(ref.max_abs_diff(per_fiber.output), 1e-2);
    EXPECT_LT(ref.max_abs_diff(per_slice.output), 1e-2);
  }
}

TEST(OutputCombine, PerSliceTouchesOutputLess) {
  PowerLawConfig cfg;
  cfg.dims = {20, 60, 400};
  cfg.target_nnz = 8000;
  cfg.fiber_alpha = 2.5;  // many short fibers per slice
  cfg.max_fiber_len = 4;
  cfg.seed = 403;
  const SparseTensor x = generate_power_law(cfg);
  const auto factors = make_random_factors(x.dims(), 8, 404);
  const DeviceModel device = DeviceModel::p100();
  const BcsfTensor b = build_bcsf(x, 0);
  const double per_fiber =
      mttkrp_bcsf_gpu(b, factors, device, OutputCombine::kPerFiber)
          .report.cycles;
  const double per_slice =
      mttkrp_bcsf_gpu(b, factors, device, OutputCombine::kPerSliceShared)
          .report.cycles;
  // With fibers >> slices, fewer Y touches should not be slower.
  EXPECT_LE(per_slice, per_fiber * 1.02);
}

}  // namespace
}  // namespace bcsf
