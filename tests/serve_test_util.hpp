// Shared helpers for the serving-layer test suites (concurrent_cache_test,
// serve_property_test, dynamic_update_test, mixed_op_serve_test).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/dense_matrix.hpp"
#include "tensor/generator.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/types.hpp"

namespace bcsf::serve_test {

/// Largest absolute entry of the reference output, floored at 1: fp32
/// kernels accumulate in different orders than the double-precision
/// reference, so comparison tolerances scale with the output magnitude
/// (same convention as mttkrp_equivalence_test).
inline double ref_scale(const DenseMatrix& ref) {
  double scale = 1.0;
  for (value_t v : ref.data()) {
    scale = std::max(scale, static_cast<double>(std::abs(v)));
  }
  return scale;
}

/// Launches `n` threads that first block on a shared start gate, then run
/// `body(thread_index)`; joins them all.  The gate maximizes overlap.
template <typename Body>
void run_threads(int n, Body body) {
  std::promise<void> go;
  std::shared_future<void> gate = go.get_future().share();
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([i, gate, &body] {
      gate.wait();
      body(i);
    });
  }
  go.set_value();
  for (std::thread& t : threads) t.join();
}

// ---------------------------------------------------------------------------
// Exact-grid inputs (see dynamic_update_test for the full argument): all
// values live on a coarse power-of-two grid -- small-integer tensor
// values, factor entries that are multiples of 0.5 with |entry| <= 1 --
// so every product carries <= 8 mantissa bits and every partial sum stays
// far below 2^18.  ALL float and double arithmetic in every kernel is
// then exact, making results independent of accumulation order,
// base/delta split, and coalescing: any wrong or missing nonzero is a
// hard bitwise mismatch.
// ---------------------------------------------------------------------------

/// Tensor with distinct random coordinates and small-integer values.
inline SparseTensor exact_tensor(const std::vector<index_t>& dims,
                                 offset_t nnz, std::uint64_t seed) {
  SparseTensor x = generate_uniform(dims, nnz, seed);
  std::mt19937 rng(seed * 31 + 7);
  for (value_t& v : x.values()) {
    v = static_cast<value_t>(1 + rng() % 3);
  }
  return x;
}

/// One rank-`rank` factor per mode; entries are multiples of 0.5 in
/// [-1, 1].  rank == 1 gives exact TTV vectors.
inline std::shared_ptr<const std::vector<DenseMatrix>> exact_factors(
    const std::vector<index_t>& dims, rank_t rank, std::uint64_t seed) {
  std::mt19937 rng(seed);
  std::vector<DenseMatrix> factors;
  for (index_t d : dims) {
    DenseMatrix m(d, rank);
    for (value_t& v : m.data()) {
      v = 0.5F * static_cast<value_t>(static_cast<int>(rng() % 5) - 2);
    }
    factors.push_back(std::move(m));
  }
  return std::make_shared<const std::vector<DenseMatrix>>(std::move(factors));
}

/// Additive update batch: random coordinates (may collide with existing
/// nonzeros -- that is the point), nonzero integer values in [-3, 3].
inline SparseTensor exact_batch(const std::vector<index_t>& dims, offset_t nnz,
                                std::mt19937& rng) {
  SparseTensor b(dims);
  std::vector<index_t> coords(dims.size());
  for (offset_t i = 0; i < nnz; ++i) {
    for (std::size_t m = 0; m < dims.size(); ++m) {
      coords[m] = static_cast<index_t>(rng() % dims[m]);
    }
    const int magnitude = 1 + static_cast<int>(rng() % 3);
    b.push_back(coords,
                static_cast<value_t>(rng() % 2 ? magnitude : -magnitude));
  }
  return b;
}

inline void append_nonzeros(SparseTensor& dst, const SparseTensor& src) {
  std::vector<index_t> coords(dst.order());
  for (offset_t z = 0; z < src.nnz(); ++z) {
    for (index_t m = 0; m < dst.order(); ++m) coords[m] = src.coord(m, z);
    dst.push_back(coords, src.value(z));
  }
}

inline ::testing::AssertionResult bitwise_equal(const DenseMatrix& expected,
                                                const DenseMatrix& actual) {
  if (expected.rows() != actual.rows() || expected.cols() != actual.cols()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  const auto e = expected.data();
  const auto a = actual.data();
  if (std::memcmp(e.data(), a.data(), e.size() * sizeof(value_t)) != 0) {
    return ::testing::AssertionFailure()
           << "bitwise mismatch, max |diff| = "
           << expected.max_abs_diff(actual);
  }
  return ::testing::AssertionSuccess();
}

}  // namespace bcsf::serve_test
