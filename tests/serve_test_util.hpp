// Shared helpers for the serving-layer test suites (concurrent_cache_test,
// serve_property_test).
#pragma once

#include <algorithm>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "util/types.hpp"

namespace bcsf::serve_test {

/// Largest absolute entry of the reference output, floored at 1: fp32
/// kernels accumulate in different orders than the double-precision
/// reference, so comparison tolerances scale with the output magnitude
/// (same convention as mttkrp_equivalence_test).
inline double ref_scale(const DenseMatrix& ref) {
  double scale = 1.0;
  for (value_t v : ref.data()) {
    scale = std::max(scale, static_cast<double>(std::abs(v)));
  }
  return scale;
}

/// Launches `n` threads that first block on a shared start gate, then run
/// `body(thread_index)`; joins them all.  The gate maximizes overlap.
template <typename Body>
void run_threads(int n, Body body) {
  std::promise<void> go;
  std::shared_future<void> gate = go.get_future().share();
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([i, gate, &body] {
      gate.wait();
      body(i);
    });
  }
  go.set_value();
  for (std::thread& t : threads) t.join();
}

}  // namespace bcsf::serve_test
