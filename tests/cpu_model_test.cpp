// Tests for the 28-core Broadwell cost model used in the cross-platform
// figures: sanity bounds and the qualitative behaviors the paper relies
// on (tiling hurting fiber-dominated tensors, imbalance from skewed
// slices, short modes starving thread-level parallelism).
#include <gtest/gtest.h>

#include "formats/csf.hpp"
#include "formats/hicoo.hpp"
#include "kernels/cpu_model.hpp"
#include "tensor/generator.hpp"

namespace bcsf {
namespace {

SparseTensor fiber_dominated() {
  // F ~ M: every fiber a singleton, the structure SPLATT's tiling walks
  // once per tile.
  PowerLawConfig cfg;
  cfg.dims = {2000, 3000, 500};
  cfg.target_nnz = 40000;
  cfg.fixed_fiber_len = 1;
  cfg.seed = 71;
  return generate_power_law(cfg);
}

SparseTensor skewed_slices() {
  PowerLawConfig cfg;
  cfg.dims = {600, 300, 400};
  cfg.target_nnz = 40000;
  cfg.slice_alpha = 0.25;
  cfg.max_slice_frac = 0.5;
  cfg.seed = 72;
  return generate_power_law(cfg);
}

SparseTensor balanced() {
  PowerLawConfig cfg;
  cfg.dims = {600, 300, 400};
  cfg.target_nnz = 40000;
  cfg.slice_alpha = 3.0;
  cfg.max_slice_frac = 0.002;
  cfg.fiber_alpha = 3.0;
  cfg.seed = 73;
  return generate_power_law(cfg);
}

TEST(CpuModel, EstimatesArePositiveAndFinite) {
  const CpuModel cpu = CpuModel::broadwell();
  const CsfTensor csf = build_csf(balanced(), 0);
  for (bool tiled : {false, true}) {
    const CpuEstimate e = estimate_splatt(csf, 32, cpu, tiled);
    EXPECT_GT(e.seconds, 0.0);
    EXPECT_GT(e.gflops, 0.0);
    EXPECT_GE(e.imbalance, 1.0);
    EXPECT_GT(e.traffic_bytes, 0.0);
  }
}

TEST(CpuModel, TilingHurtsFiberDominatedTensors) {
  // The paper's Fig. 11 vs 12 gap: tiling re-walks the fiber structure
  // once per tile, which dominates when F ~ M.
  const CpuModel cpu = CpuModel::broadwell();
  const CsfTensor csf = build_csf(fiber_dominated(), 0);
  const CpuEstimate nt = estimate_splatt(csf, 32, cpu, false);
  const CpuEstimate t = estimate_splatt(csf, 32, cpu, true, 8);
  EXPECT_GT(t.seconds, nt.seconds);
}

TEST(CpuModel, SkewedSlicesRaiseImbalance) {
  const CpuModel cpu = CpuModel::broadwell();
  const CpuEstimate skew =
      estimate_splatt(build_csf(skewed_slices(), 0), 32, cpu, false);
  const CpuEstimate flat =
      estimate_splatt(build_csf(balanced(), 0), 32, cpu, false);
  EXPECT_GT(skew.imbalance, flat.imbalance);
  EXPECT_GT(skew.imbalance, 1.5);
}

TEST(CpuModel, ShortModeLimitsParallelism) {
  // A mode with fewer slices than cores cannot use all 28 threads.
  PowerLawConfig cfg;
  cfg.dims = {10, 3000, 500};  // mode 0 has at most 10 slices
  cfg.target_nnz = 30000;
  cfg.seed = 74;
  const SparseTensor x = generate_power_law(cfg);
  const CpuModel cpu = CpuModel::broadwell();
  const CpuEstimate short_mode = estimate_splatt(build_csf(x, 0), 32, cpu, false);
  // With <= 10 chunks for 28 cores, imbalance >= 28/10.
  EXPECT_GE(short_mode.imbalance, 2.0);
}

TEST(CpuModel, MoreWorkMoreTime) {
  const CpuModel cpu = CpuModel::broadwell();
  PowerLawConfig small;
  small.dims = {600, 300, 400};
  small.target_nnz = 10000;
  small.seed = 75;
  PowerLawConfig big = small;
  big.target_nnz = 80000;
  const CpuEstimate se =
      estimate_splatt(build_csf(generate_power_law(small), 0), 32, cpu, false);
  const CpuEstimate be =
      estimate_splatt(build_csf(generate_power_law(big), 0), 32, cpu, false);
  EXPECT_GT(be.seconds, se.seconds);
}

TEST(CpuModel, HicooEstimateSane) {
  const CpuModel cpu = CpuModel::broadwell();
  const HicooTensor h = build_hicoo(balanced());
  for (index_t mode = 0; mode < 3; ++mode) {
    const CpuEstimate e = estimate_hicoo(h, mode, 32, cpu);
    EXPECT_GT(e.seconds, 0.0);
    EXPECT_GE(e.imbalance, 1.0);
  }
}

TEST(CpuModel, RankScalesWork) {
  const CpuModel cpu = CpuModel::broadwell();
  const CsfTensor csf = build_csf(balanced(), 0);
  const CpuEstimate r8 = estimate_splatt(csf, 8, cpu, false);
  const CpuEstimate r64 = estimate_splatt(csf, 64, cpu, false);
  EXPECT_GT(r64.flops, 7.0 * r8.flops);
}

}  // namespace
}  // namespace bcsf
