// Tests for the SS VII related-work baselines (GigaTensor-style COO,
// DFacTo SpMV pair, SPLATT ONEMODE) and the reordering module (the
// paper's named future work).
#include <gtest/gtest.h>

#include "core/factors.hpp"
#include "formats/csf.hpp"
#include "kernels/extra_baselines.hpp"
#include "kernels/mttkrp.hpp"
#include "tensor/generator.hpp"
#include "tensor/reorder.hpp"
#include "tensor/tensor_stats.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

SparseTensor test3() {
  PowerLawConfig cfg;
  cfg.dims = {50, 40, 120};
  cfg.target_nnz = 3000;
  cfg.fiber_alpha = 0.8;
  cfg.max_fiber_len = 60;
  cfg.seed = 201;
  return generate_power_law(cfg);
}

SparseTensor test4() {
  PowerLawConfig cfg;
  cfg.dims = {25, 20, 15, 30};
  cfg.target_nnz = 1500;
  cfg.seed = 202;
  return generate_power_law(cfg);
}

TEST(GigaTensor, MatchesReferenceAllModes) {
  const SparseTensor x = test3();
  const auto factors = make_random_factors(x.dims(), 8, 7);
  for (index_t mode = 0; mode < 3; ++mode) {
    const DenseMatrix ref = mttkrp_reference(x, mode, factors);
    EXPECT_LT(ref.max_abs_diff(mttkrp_gigatensor_cpu(x, mode, factors)),
              1e-2);
  }
}

TEST(GigaTensor, Order4) {
  const SparseTensor x = test4();
  const auto factors = make_random_factors(x.dims(), 4, 8);
  const DenseMatrix ref = mttkrp_reference(x, 2, factors);
  EXPECT_LT(ref.max_abs_diff(mttkrp_gigatensor_cpu(x, 2, factors)), 1e-2);
}

TEST(DFacTo, MatchesReferencePerRootMode) {
  const SparseTensor x = test3();
  const auto factors = make_random_factors(x.dims(), 8, 9);
  for (index_t mode = 0; mode < 3; ++mode) {
    const CsfTensor csf = build_csf(x, mode);
    const DenseMatrix ref = mttkrp_reference(x, mode, factors);
    EXPECT_LT(ref.max_abs_diff(mttkrp_dfacto_cpu(csf, factors)), 1e-2)
        << "mode " << mode;
  }
}

TEST(DFacTo, RejectsOrder4) {
  const SparseTensor x = test4();
  const auto factors = make_random_factors(x.dims(), 4, 10);
  const CsfTensor csf = build_csf(x, 0);
  EXPECT_THROW(mttkrp_dfacto_cpu(csf, factors), Error);
}

TEST(Onemode, ForeignModesMatchReference) {
  // The essence of ONEMODE: one CSF (rooted at mode 0) answers MTTKRP for
  // *every* mode.
  const SparseTensor x = test3();
  const auto factors = make_random_factors(x.dims(), 8, 11);
  const CsfTensor csf = build_csf(x, 0);
  for (index_t target = 0; target < 3; ++target) {
    const DenseMatrix ref = mttkrp_reference(x, target, factors);
    EXPECT_LT(ref.max_abs_diff(mttkrp_csf_cpu_onemode(csf, target, factors)),
              1e-2)
        << "target " << target;
  }
}

TEST(Onemode, Order4AllTargets) {
  const SparseTensor x = test4();
  const auto factors = make_random_factors(x.dims(), 4, 12);
  const CsfTensor csf = build_csf(x, 1);
  for (index_t target = 0; target < 4; ++target) {
    const DenseMatrix ref = mttkrp_reference(x, target, factors);
    EXPECT_LT(ref.max_abs_diff(mttkrp_csf_cpu_onemode(csf, target, factors)),
              1e-2)
        << "target " << target;
  }
}

TEST(Reorder, RandomRelabelingIsBijection) {
  const Relabeling perm = random_relabeling(100, 5);
  const Relabeling inv = invert_relabeling(perm);
  for (index_t i = 0; i < 100; ++i) {
    EXPECT_EQ(inv[perm[i]], i);
  }
}

TEST(Reorder, ApplyRejectsNonBijection) {
  SparseTensor x = test3();
  Relabeling bad(x.dim(0), 0);  // all zeros
  EXPECT_THROW(apply_relabeling(x, 0, bad), Error);
  Relabeling wrong_size(x.dim(0) + 1);
  EXPECT_THROW(apply_relabeling(x, 0, wrong_size), Error);
}

TEST(Reorder, RelabelingPermutesMttkrpRows) {
  SparseTensor x = test3();
  const auto factors = make_random_factors(x.dims(), 8, 13);
  const DenseMatrix before = mttkrp_reference(x, 0, factors);

  const Relabeling perm = random_relabeling(x.dim(0), 99);
  apply_relabeling(x, 0, perm);
  const DenseMatrix after = mttkrp_reference(x, 0, factors);
  // Row old-i of the original equals row perm[old-i] of the relabeled
  // result: the relabeling is a pure row permutation of the output
  // because mode-0 factors do not participate in mode-0 MTTKRP.
  for (index_t i = 0; i < x.dim(0); ++i) {
    for (rank_t r = 0; r < 8; ++r) {
      EXPECT_NEAR(before(i, r), after(perm[i], r), 1e-4);
    }
  }
}

TEST(Reorder, DegreeSortedPutsHeaviestFirst) {
  SparseTensor x = test3();
  const Relabeling perm = degree_sorted_relabeling(x, 0);
  apply_relabeling(x, 0, perm);
  const ModeStats s = compute_mode_stats(x, 0);
  // After relabeling, slice 0 is the heaviest: the first slice's count
  // equals the max.
  SparseTensor sorted = x;
  sorted.sort(mode_order_for(0, 3));
  const SliceFiberCounts c = count_slices_and_fibers(sorted, mode_order_for(0, 3));
  EXPECT_EQ(static_cast<double>(c.slice_nnz.front()), s.nnz_per_slice.max);
}

TEST(Reorder, ZorderKeepsSemantics) {
  SparseTensor x = test3();
  const auto factors = make_random_factors(x.dims(), 8, 14);
  const DenseMatrix before = mttkrp_reference(x, 1, factors);
  zorder_sort(x, 7);
  EXPECT_NO_THROW(x.validate());
  const DenseMatrix after = mttkrp_reference(x, 1, factors);
  EXPECT_LT(before.max_abs_diff(after), 1e-3);
}

TEST(Reorder, ZorderGroupsNeighbors) {
  // After a Z-order sort, consecutive nonzeros share high coordinate bits
  // far more often than in a random order.
  SparseTensor x = generate_uniform({256, 256, 256}, 4000, 15);
  auto locality = [&](const SparseTensor& t) {
    offset_t close = 0;
    for (offset_t z = 1; z < t.nnz(); ++z) {
      bool same_box = true;
      for (index_t m = 0; m < 3; ++m) {
        if ((t.coord(m, z) >> 5) != (t.coord(m, z - 1) >> 5)) {
          same_box = false;
          break;
        }
      }
      if (same_box) ++close;
    }
    return close;
  };
  const offset_t before = locality(x);
  zorder_sort(x, 8);
  const offset_t after = locality(x);
  EXPECT_GT(after, 4 * std::max<offset_t>(before, 1));
}

TEST(Reorder, ZorderRejectsBadBits) {
  SparseTensor x = test3();
  EXPECT_THROW(zorder_sort(x, 0), Error);
  EXPECT_THROW(zorder_sort(x, 17), Error);
}

}  // namespace
}  // namespace bcsf
