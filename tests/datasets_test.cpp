// Tests for the Table III dataset registry and the structural signatures
// the twins must reproduce (they drive every evaluation experiment).
#include <gtest/gtest.h>

#include "tensor/datasets.hpp"
#include "tensor/tensor_stats.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

TEST(Datasets, RegistryHasAllTwelve) {
  const auto& all = paper_datasets();
  ASSERT_EQ(all.size(), 12u);
  const std::vector<std::string> expected = {
      "deli",  "nell1", "nell2", "flick-3d", "fr_m",     "fr_s",
      "darpa", "nips",  "enron", "ch-cr",    "flick-4d", "uber"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
  }
}

TEST(Datasets, OrdersMatchTableIII) {
  for (const auto& spec : paper_datasets()) {
    EXPECT_EQ(spec.order, spec.paper_dims.size());
    EXPECT_EQ(spec.order, spec.twin.dims.size());
    if (spec.order == 3) {
      EXPECT_TRUE(spec.table2.has_value()) << spec.name;
    } else {
      EXPECT_FALSE(spec.table2.has_value()) << spec.name;
    }
  }
}

TEST(Datasets, ThreeOrderNamesAreSeven) {
  EXPECT_EQ(three_order_dataset_names().size(), 7u);
  EXPECT_EQ(all_dataset_names().size(), 12u);
}

TEST(Datasets, LookupWorksAndRejectsUnknown) {
  EXPECT_EQ(dataset_spec("darpa").name, "darpa");
  EXPECT_THROW(dataset_spec("not-a-tensor"), Error);
}

TEST(Datasets, TwinScalesAreSane) {
  for (const auto& spec : paper_datasets()) {
    // Twins are scaled *down*: fewer nonzeros than the paper's tensor.
    EXPECT_LT(spec.twin.target_nnz, spec.paper_nnz) << spec.name;
    EXPECT_GE(spec.twin.target_nnz, 100'000u) << spec.name;
  }
}

TEST(Datasets, FreebaseTwinsHaveShortMode3AndSingletonFibers) {
  const DatasetSpec& fr = dataset_spec("fr_m");
  EXPECT_EQ(fr.twin.dims[2], 166u);  // the paper's mode-3 dimension, unscaled
  EXPECT_EQ(fr.twin.fixed_fiber_len, 1u);
  EXPECT_EQ(dataset_spec("fr_s").twin.dims[2], 532u);
}

TEST(Datasets, DarpaTwinSignature) {
  const SparseTensor x = generate_dataset("darpa");
  const ModeStats s = compute_mode_stats(x, 0);
  // Table II's darpa row: extreme stddev in BOTH distributions.
  EXPECT_GT(s.nnz_per_slice.stddev, 3.0 * s.nnz_per_slice.mean);
  EXPECT_GT(s.nnz_per_fiber.stddev, 3.0 * s.nnz_per_fiber.mean);
}

TEST(Datasets, FlickTwinSignature) {
  const SparseTensor x = generate_dataset("flick-3d");
  const ModeStats s = compute_mode_stats(x, 0);
  // "in flick-3d, each fiber has only one nonzero" (SS V-C).
  EXPECT_DOUBLE_EQ(s.nnz_per_fiber.max, 1.0);
  // Tiny average slices -> large COO + CSL populations for HB-CSF.
  EXPECT_LT(s.nnz_per_slice.mean, 16.0);
  EXPECT_GT(s.singleton_slice_fraction + s.csl_slice_fraction, 0.9);
}

TEST(Datasets, Nell2TwinHasHeavySlices) {
  const SparseTensor x = generate_dataset("nell2");
  const ModeStats s = compute_mode_stats(x, 0);
  EXPECT_GT(s.nnz_per_slice.stddev, s.nnz_per_slice.mean);
  EXPECT_GT(s.nnz_per_slice.max, 20000.0);  // a block-pinning slice
}

TEST(Datasets, GenerateByNameMatchesBySpec) {
  const SparseTensor a = generate_dataset("uber");
  const SparseTensor b = generate_dataset(dataset_spec("uber"));
  ASSERT_EQ(a.nnz(), b.nnz());
  for (offset_t z = 0; z < std::min<offset_t>(a.nnz(), 100); ++z) {
    EXPECT_EQ(a.coord(0, z), b.coord(0, z));
  }
}

TEST(Datasets, FourOrderTwinsValidate) {
  for (const std::string name : {"nips", "uber"}) {
    const SparseTensor x = generate_dataset(name);
    EXPECT_EQ(x.order(), 4u) << name;
    EXPECT_NO_THROW(x.validate()) << name;
    EXPECT_GT(x.nnz(), 100'000u) << name;
  }
}

}  // namespace
}  // namespace bcsf
