// The sharded plan architecture (DESIGN.md §8): nnz-balanced slice-range
// partitioning, the ShardedPlan meta format, auto shard pricing, and
// sharded CPD-ALS.
//
// Exactness rides the power-of-two grid of serve_test_util.hpp: every
// kernel's float/double arithmetic is rounding-free there, so a sharded
// execution -- per-shard runs reduced in double, one cast -- must match
// the sequential references BITWISE for every shard count and inner
// format.  Any lost, duplicated, or misrouted nonzero is a hard
// mismatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bcsf/bcsf.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::bitwise_equal;
using serve_test::exact_factors;
using serve_test::exact_tensor;

constexpr std::uint64_t kSeed = 2024;

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(Partitioner, BalancesAndCoversEveryNonzero) {
  const SparseTensor x = exact_tensor({60, 50, 40}, 6000, kSeed);
  for (unsigned k : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE(k);
    const TensorPartition p = partition_tensor(x, 0, k);
    ASSERT_EQ(p.size(), k);
    EXPECT_EQ(p.mode, 0u);
    EXPECT_EQ(p.dims, x.dims());

    offset_t total = 0;
    for (std::size_t s = 0; s < p.size(); ++s) {
      const TensorShard& shard = p.shards[s];
      ASSERT_NE(shard.tensor, nullptr);
      EXPECT_GT(shard.nnz(), 0u) << "shard " << s << " empty";
      EXPECT_LT(shard.slice_begin, shard.slice_end);
      // Every nonzero lives inside its shard's declared slice range.
      for (offset_t z = 0; z < shard.tensor->nnz(); ++z) {
        const index_t slice = shard.tensor->coord(0, z);
        EXPECT_GE(slice, shard.slice_begin);
        EXPECT_LT(slice, shard.slice_end);
      }
      if (s > 0) {
        EXPECT_GE(shard.slice_begin, p.shards[s - 1].slice_begin);
      }
      total += shard.nnz();
    }
    EXPECT_EQ(total, x.nnz()) << "shards must partition the nonzeros";

    // Equal-nnz targeting: no shard exceeds twice the ideal budget.
    const offset_t budget = ceil_div<offset_t>(x.nnz(), k);
    EXPECT_LE(p.max_shard_nnz(), 2 * budget) << p.to_string();
  }
}

TEST(Partitioner, SplitsHeavySlices) {
  // One slice owns ~85% of the nonzeros: slice-granular packing cannot
  // balance this, so the partitioner must split the slice mid-stream
  // (the paper's slc-split at tensor granularity).
  SparseTensor x({8, 64, 64});
  std::mt19937 rng(11);
  for (int z = 0; z < 1700; ++z) {
    const index_t i = z < 1450 ? 3 : static_cast<index_t>(rng() % 8);
    x.push_back(std::vector<index_t>{i, static_cast<index_t>(rng() % 64),
                                     static_cast<index_t>(rng() % 64)},
                1.0F);
  }
  const TensorPartition p = partition_tensor(x, 0, 4);
  ASSERT_EQ(p.size(), 4u);
  const offset_t budget = ceil_div<offset_t>(x.nnz(), 4);
  EXPECT_LE(p.max_shard_nnz(), 2 * budget) << p.to_string();
  // The heavy slice appears in more than one shard's range.
  int covering = 0;
  for (const TensorShard& shard : p.shards) {
    if (shard.slice_begin <= 3 && 3 < shard.slice_end) ++covering;
  }
  EXPECT_GT(covering, 1) << "heavy slice was not split: " << p.to_string();
}

TEST(Partitioner, RoutingIsTotalAndConsistent) {
  const SparseTensor x = exact_tensor({40, 30, 20}, 2500, kSeed + 1);
  const TensorPartition p = partition_tensor(x, 0, 4);
  // Total: every slice index (even empty ones) routes somewhere valid.
  for (index_t slice = 0; slice < x.dim(0); ++slice) {
    const std::size_t s = p.shard_for_slice(slice);
    ASSERT_LT(s, p.size());
    // Routing respects ownership: the routed shard's range contains the
    // slice, except for slices no shard covers (empty in the source).
    bool covered = false;
    for (const TensorShard& shard : p.shards) {
      if (shard.slice_begin <= slice && slice < shard.slice_end) {
        covered = true;
      }
    }
    if (covered) {
      EXPECT_LE(p.shards[s].slice_begin, slice);
    }
  }

  // split() preserves every update nonzero, routed consistently.
  std::mt19937 rng(77);
  const SparseTensor batch = serve_test::exact_batch(x.dims(), 300, rng);
  const std::vector<SparseTensor> routed = p.split(batch);
  ASSERT_EQ(routed.size(), p.size());
  offset_t total = 0;
  for (std::size_t s = 0; s < routed.size(); ++s) {
    for (offset_t z = 0; z < routed[s].nnz(); ++z) {
      EXPECT_EQ(p.shard_for_slice(routed[s].coord(0, z)), s);
    }
    total += routed[s].nnz();
  }
  EXPECT_EQ(total, batch.nnz());
}

TEST(Partitioner, ClampsShardCount) {
  const SparseTensor x = exact_tensor({10, 10, 10}, 12, kSeed + 2);
  EXPECT_EQ(partition_tensor(x, 0, 0).size(), 1u);
  EXPECT_EQ(partition_tensor(x, 0, 1).size(), 1u);
  // K > nnz clamps so every shard stays non-empty.
  const TensorPartition p = partition_tensor(x, 0, 1000);
  EXPECT_LE(p.size(), static_cast<std::size_t>(x.nnz()));
  EXPECT_GE(p.min_shard_nnz(), 1u);

  SparseTensor empty({5, 5, 5});
  EXPECT_THROW(partition_tensor(empty, 0, 2), Error);
  EXPECT_THROW(partition_tensor(x, 3, 2), Error);
}

TEST(Partitioner, ModeAware) {
  // Partitioning along mode 2 must produce mode-2 slice ranges.
  const SparseTensor x = exact_tensor({20, 30, 40}, 3000, kSeed + 3);
  const TensorPartition p = partition_tensor(x, 2, 3);
  EXPECT_EQ(p.mode, 2u);
  for (const TensorShard& shard : p.shards) {
    for (offset_t z = 0; z < shard.tensor->nnz(); ++z) {
      EXPECT_GE(shard.tensor->coord(2, z), shard.slice_begin);
      EXPECT_LT(shard.tensor->coord(2, z), shard.slice_end);
    }
  }
}

// ---------------------------------------------------------------------------
// Auto shard pricing
// ---------------------------------------------------------------------------

TEST(AutoShardCount, PricesOverheadAgainstSaturation) {
  AutoPolicyOptions opts;  // saturation_nnz = 1 << 16, max_shards = 16
  EXPECT_EQ(auto_shard_count(0, 0, opts), 1u);
  EXPECT_EQ(auto_shard_count(1000, 0, opts), 1u)
      << "undersized stays monolithic";
  EXPECT_EQ(auto_shard_count(opts.saturation_nnz - 1, 0, opts), 1u);
  EXPECT_EQ(auto_shard_count(4 * opts.saturation_nnz, 0, opts), 4u);
  EXPECT_EQ(auto_shard_count(1000 * opts.saturation_nnz, 0, opts),
            opts.max_shards)
      << "clamped at max_shards";

  // The break-even gate (§8): capacity alone no longer decides.  A tensor
  // big enough to feed K shards still stays monolithic when the K-way
  // fan-out or reduce would cost more kernel-equivalents than it removes.
  AutoPolicyOptions small;
  small.saturation_nnz = 100;
  small.max_shards = 8;
  EXPECT_EQ(auto_shard_count(350, 0, small), 1u)
      << "350 nnz of work cannot pay for 3 task submissions";
  small.shard_submit_cost = 0.0;
  EXPECT_EQ(auto_shard_count(350, 0, small), 3u)
      << "same capacity prices 3 once submission is free";

  // A wide output mode makes the K-way merge the binding constraint:
  // k * mode_dim * expected_rank reduce traffic swamps the kernel win.
  EXPECT_EQ(auto_shard_count(4 * opts.saturation_nnz, 4096, opts), 1u);

  const ShardPricing pricing =
      price_shard_count(4 * opts.saturation_nnz, 64, opts);
  EXPECT_EQ(pricing.shards, 4u);
  EXPECT_GT(pricing.gain, pricing.fanout_cost + pricing.reduce_cost)
      << "a sharded verdict must clear its own overhead terms";

  const AutoDecision d = auto_select_format(exact_tensor({20, 20, 20}, 500,
                                                         kSeed + 4),
                                            0);
  EXPECT_EQ(d.shards, 1u) << "decision carries the pricing";
  EXPECT_EQ(d.sharding.shards, d.shards)
      << "the priced verdict and the decision field must agree";
}

// ---------------------------------------------------------------------------
// ShardedPlan: bitwise exactness on the power-of-two grid
// ---------------------------------------------------------------------------

class ShardedPlanExactness : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardedPlanExactness, MatchesReferencesAcrossFormats) {
  const unsigned k = GetParam();
  for (const std::vector<index_t>& dims :
       {std::vector<index_t>{36, 28, 44}, std::vector<index_t>{14, 18, 10, 22}}) {
    const SparseTensor x = exact_tensor(dims, 2200, kSeed + 5);
    const auto factors = exact_factors(dims, 8, kSeed + 6);
    const auto vectors = exact_factors(dims, 1, kSeed + 7);
    const std::vector<value_t> lambda(8, 0.5F);

    for (const char* inner : {"coo", "bcsf", "hbcsf", "cpu-coo", "auto"}) {
      for (index_t mode = 0; mode < x.order(); ++mode) {
        SCOPED_TRACE(testing::Message() << inner << " K=" << k << " mode="
                                        << mode << " order=" << x.order());
        PlanOptions opts;
        opts.device = DeviceModel::tiny();
        opts.sharding.shards = k;
        opts.sharding.shard_format = inner;
        const PlanPtr plan =
            FormatRegistry::instance().create("sharded", x, mode, opts);
        EXPECT_EQ(plan->format(), "sharded");
        EXPECT_EQ(plan->resolved_format(), "sharded");
        auto* sharded = dynamic_cast<const ShardedPlan*>(plan.get());
        ASSERT_NE(sharded, nullptr);
        EXPECT_EQ(sharded->shard_count(), std::min<std::size_t>(k, x.nnz()));
        EXPECT_GT(plan->storage_bytes(), 0u);

        // MTTKRP: bitwise against the double-accumulating reference.
        const DenseMatrix mttkrp_ref = mttkrp_reference(x, mode, *factors);
        EXPECT_TRUE(bitwise_equal(mttkrp_ref, plan->run(*factors).output));

        // TTV through execute(): bitwise against ttv_reference.
        OpRequest ttv;
        ttv.kind = OpKind::kTtv;
        ttv.mode = mode;
        ttv.factors = vectors.get();
        EXPECT_TRUE(bitwise_equal(ttv_reference(x, mode, *vectors),
                                  plan->execute(ttv).output));

        // FIT: the partial inner products reduce in double, so the
        // scalar must be EXACTLY the sequential reference's.
        OpRequest fit;
        fit.kind = OpKind::kFit;
        fit.mode = mode;
        fit.factors = factors.get();
        fit.lambda = &lambda;
        EXPECT_EQ(plan->execute(fit).scalar,
                  fit_inner_reference(x, *factors, &lambda));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedPlanExactness,
                         ::testing::Values(1u, 2u, 4u, 7u));

TEST(ShardedPlan, ParallelBuildMatchesSerialBitwise) {
  const SparseTensor x = exact_tensor({48, 32, 24}, 4000, kSeed + 8);
  const auto factors = exact_factors(x.dims(), 8, kSeed + 9);

  PlanOptions serial;
  serial.device = DeviceModel::tiny();
  serial.sharding.shards = 4;
  serial.sharding.shard_format = "bcsf";
  const PlanPtr a = FormatRegistry::instance().create("sharded", x, 0, serial);

  ThreadPool pool(4);
  PlanOptions parallel = serial;
  parallel.sharding.pool = &pool;
  const PlanPtr b =
      FormatRegistry::instance().create("sharded", x, 0, parallel);

  EXPECT_TRUE(bitwise_equal(a->run(*factors).output, b->run(*factors).output));
  EXPECT_EQ(a->storage_bytes(), b->storage_bytes());
}

TEST(ShardedPlan, NestedBuildOnSingleWorkerPoolDoesNotDeadlock) {
  // The serving layer builds sharded work from INSIDE pool tasks; with a
  // one-worker pool the caller must drain its own sub-tasks.
  const SparseTensor x = exact_tensor({30, 30, 30}, 1500, kSeed + 10);
  const auto factors = exact_factors(x.dims(), 4, kSeed + 11);
  const DenseMatrix ref = mttkrp_reference(x, 0, *factors);

  ThreadPool pool(1);
  auto result = pool.async([&] {
    PlanOptions opts;
    opts.device = DeviceModel::tiny();
    opts.sharding.shards = 4;
    opts.sharding.shard_format = "coo";
    opts.sharding.pool = &pool;
    const PlanPtr plan =
        FormatRegistry::instance().create("sharded", x, 0, opts);
    return plan->run(*factors).output;
  });
  EXPECT_TRUE(bitwise_equal(ref, result.get()));
}

TEST(ShardedPlan, AutoPricingAndMixedInnerFormats) {
  const SparseTensor x = exact_tensor({40, 40, 40}, 5000, kSeed + 12);
  PlanOptions opts;
  opts.device = DeviceModel::tiny();
  opts.sharding.shards = 0;  // auto: 5000 nnz < saturation -> 1 shard
  const PlanPtr plan = FormatRegistry::instance().create("sharded", x, 0, opts);
  auto* sharded = dynamic_cast<const ShardedPlan*>(plan.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->shard_count(), 1u);

  // Explicit K with "auto" inner plans: each shard resolves its own
  // format and none may leak the meta name.
  PlanOptions mixed;
  mixed.device = DeviceModel::tiny();
  mixed.sharding.shards = 3;
  mixed.sharding.shard_format = "auto";
  const PlanPtr p3 = FormatRegistry::instance().create("sharded", x, 0, mixed);
  auto* s3 = dynamic_cast<const ShardedPlan*>(p3.get());
  ASSERT_NE(s3, nullptr);
  for (const std::string& f : s3->shard_formats()) {
    EXPECT_NE(f, "auto");
    EXPECT_NE(f, "sharded");
    EXPECT_TRUE(FormatRegistry::instance().contains(f)) << f;
  }
  EXPECT_FALSE(p3->detail().empty());

  // Recursive sharding is refused.
  PlanOptions recursive;
  recursive.sharding.shards = 2;
  recursive.sharding.shard_format = "sharded";
  EXPECT_THROW(FormatRegistry::instance().create("sharded", x, 0, recursive),
               Error);
}

// ---------------------------------------------------------------------------
// Disjoint-output vs merge execution paths (§8)
// ---------------------------------------------------------------------------

TEST(ShardedPlan, DisjointOutputPathServesPartitionModeRequests) {
  // Evenly spread nonzeros: the cuts snap to slice boundaries, no slice
  // is split, so partition-mode matrix ops take the disjoint-output path
  // -- each shard writes its private row window, no K-way reduce.
  const SparseTensor x = exact_tensor({64, 24, 20}, 6400, kSeed + 20);
  const auto factors = exact_factors(x.dims(), 8, kSeed + 21);
  PlanOptions opts;
  opts.device = DeviceModel::tiny();
  opts.sharding.shards = 4;
  opts.sharding.shard_format = "coo";
  const PlanPtr plan = FormatRegistry::instance().create("sharded", x, 0, opts);
  auto* sharded = dynamic_cast<const ShardedPlan*>(plan.get());
  ASSERT_NE(sharded, nullptr);
  ASSERT_TRUE(sharded->partition().disjoint_slice_ranges());
  EXPECT_TRUE(sharded->disjoint_output(0));

  // The ownership table is the routing table: it tiles [0, dims[mode])
  // with one window per shard, no gaps, no overlap.
  const index_vec owned = sharded->partition().owned_row_begins();
  ASSERT_EQ(owned.size(), 5u);
  EXPECT_EQ(owned.front(), 0u);
  EXPECT_EQ(owned.back(), x.dim(0));
  for (std::size_t s = 0; s + 1 < owned.size(); ++s) {
    EXPECT_LT(owned[s], owned[s + 1]);
  }

  const PlanRunResult run = plan->run(*factors);
  EXPECT_EQ(run.report.kernel, "ShardedDisjoint x4");
  EXPECT_TRUE(bitwise_equal(mttkrp_reference(x, 0, *factors), run.output));

  // Repeat execution reuses pooled buffers; results must not drift.
  EXPECT_TRUE(bitwise_equal(run.output, plan->run(*factors).output));
}

TEST(ShardedPlan, SplitSlicePartitionFallsBackToMerge) {
  // One massive slice forces a mid-slice split, the shard slice ranges
  // overlap, and the disjoint-output premise fails: partition-mode
  // requests must fall back to the exact double-reduce merge.
  SparseTensor x({8, 16, 16});
  std::mt19937 rng(kSeed + 25);
  std::vector<index_t> coords(3);
  for (int i = 0; i < 1200; ++i) {
    coords = {0, static_cast<index_t>(rng() % 16),
              static_cast<index_t>(rng() % 16)};
    x.push_back(coords, static_cast<value_t>(1 + rng() % 3));
  }
  for (index_t s = 1; s < 8; ++s) {
    for (int i = 0; i < 10; ++i) {
      coords = {s, static_cast<index_t>(rng() % 16),
                static_cast<index_t>(rng() % 16)};
      x.push_back(coords, static_cast<value_t>(1 + rng() % 3));
    }
  }
  const auto factors = exact_factors(x.dims(), 8, kSeed + 26);

  PlanOptions opts;
  opts.device = DeviceModel::tiny();
  opts.sharding.shards = 4;
  opts.sharding.shard_format = "coo";
  const PlanPtr plan = FormatRegistry::instance().create("sharded", x, 0, opts);
  auto* sharded = dynamic_cast<const ShardedPlan*>(plan.get());
  ASSERT_NE(sharded, nullptr);
  ASSERT_FALSE(sharded->partition().disjoint_slice_ranges());
  EXPECT_FALSE(sharded->disjoint_output(0));

  const PlanRunResult run = plan->run(*factors);
  EXPECT_EQ(run.report.kernel, "Sharded x4");
  EXPECT_TRUE(bitwise_equal(mttkrp_reference(x, 0, *factors), run.output));
}

TEST(ShardedPlan, NonPartitionModeRequestsMergeExactly) {
  // The serving layer holds ONE partition and serves every mode from it:
  // requests whose mode differs from the partition mode never qualify
  // for disjoint output and must merge, bitwise-exactly.
  const SparseTensor x = exact_tensor({36, 28, 44}, 2200, kSeed + 22);
  const auto factors = exact_factors(x.dims(), 8, kSeed + 23);
  const auto vectors = exact_factors(x.dims(), 1, kSeed + 24);
  const PartitionPtr partition = share_partition(partition_tensor(x, 0, 4));

  PlanOptions opts;
  opts.device = DeviceModel::tiny();
  opts.sharding.shard_format = "coo";
  for (index_t mode : {1u, 2u}) {
    SCOPED_TRACE(mode);
    const ShardedPlan plan(partition, mode, opts);
    EXPECT_FALSE(plan.disjoint_output(mode));

    OpRequest req;
    req.kind = OpKind::kMttkrp;
    req.mode = mode;
    req.factors = factors.get();
    const OpResult r = plan.execute(req);
    EXPECT_EQ(r.report.kernel, "Sharded x4");
    EXPECT_TRUE(bitwise_equal(mttkrp_reference(x, mode, *factors), r.output));

    OpRequest ttv;
    ttv.kind = OpKind::kTtv;
    ttv.mode = mode;
    ttv.factors = vectors.get();
    EXPECT_TRUE(bitwise_equal(ttv_reference(x, mode, *vectors),
                              plan.execute(ttv).output));
  }
}

// ---------------------------------------------------------------------------
// Sharded plans through CPD-ALS
// ---------------------------------------------------------------------------

TEST(ShardedCpd, MatchesMonolithicFit) {
  const SparseTensor x =
      generate_low_rank({18, 14, 12}, 4, 18 * 14 * 12, 0.0F, 91);
  CpdOptions mono;
  mono.rank = 3;
  mono.max_iterations = 6;
  mono.fit_tolerance = 0.0;
  mono.format = "reference";
  const CpdResult a = cpd_als(x, mono);

  CpdOptions sharded = mono;
  sharded.shards = 4;
  const CpdResult b = cpd_als(x, sharded);
  ASSERT_EQ(b.mode_formats.size(), 3u);
  for (const std::string& f : b.mode_formats) EXPECT_EQ(f, "sharded");
  EXPECT_NEAR(a.final_fit, b.final_fit, 0.02);
}

}  // namespace
}  // namespace bcsf
