// Tests for the CSF tree builder: structure on hand-checked examples
// (including the paper's Fig. 4 tensor), invariants, storage accounting
// against the closed forms of SS III-B, and order-2/-4 generality.
#include <gtest/gtest.h>

#include "formats/csf.hpp"
#include "formats/storage.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

SparseTensor fig4_tensor() {
  SparseTensor t({3, 5, 6});
  const index_t coords[][3] = {
      {0, 1, 2},
      {1, 0, 0}, {1, 2, 3}, {1, 4, 1},
      {2, 1, 0}, {2, 1, 2}, {2, 1, 4}, {2, 1, 5},
  };
  value_t v = 1.0F;
  for (const auto& c : coords) t.push_back({c, 3}, v++);
  return t;
}

TEST(Csf, Fig4Structure) {
  const CsfTensor csf = build_csf(fig4_tensor(), 0);
  EXPECT_EQ(csf.order(), 3u);
  EXPECT_EQ(csf.num_slices(), 3u);
  EXPECT_EQ(csf.num_fibers(), 5u);
  EXPECT_EQ(csf.nnz(), 8u);
  EXPECT_NO_THROW(csf.validate());

  // Slice indices 0,1,2; slice 2 owns one fiber with 4 leaves.
  EXPECT_EQ(csf.node_index(0, 2), 2u);
  EXPECT_EQ(csf.child_end(0, 2) - csf.child_begin(0, 2), 1u);
  const offset_t fiber = csf.child_begin(0, 2);
  EXPECT_EQ(csf.node_index(1, fiber), 1u);  // j = 1
  EXPECT_EQ(csf.child_end(1, fiber) - csf.child_begin(1, fiber), 4u);
}

TEST(Csf, Fig4StorageIs24Words) {
  // The paper: "A CSF format will need the same number of words for the
  // indices (2*S + 2*F + M)" = 2*3 + 2*5 + 8 = 24 words for Fig. 4.
  const CsfTensor csf = build_csf(fig4_tensor(), 0);
  EXPECT_EQ(csf.index_storage_bytes(), 24u * kIndexBytes);
  EXPECT_EQ(csf.index_storage_bytes(),
            csf_storage_formula(csf.num_slices(), csf.num_fibers(),
                                csf.nnz()));
}

TEST(Csf, SubtreeNnz) {
  const CsfTensor csf = build_csf(fig4_tensor(), 0);
  EXPECT_EQ(csf.subtree_nnz(0, 0), 1u);
  EXPECT_EQ(csf.subtree_nnz(0, 1), 3u);
  EXPECT_EQ(csf.subtree_nnz(0, 2), 4u);
  offset_t total = 0;
  for (offset_t f = 0; f < csf.num_fibers(); ++f) {
    total += csf.subtree_nnz(1, f);
  }
  EXPECT_EQ(total, csf.nnz());
}

TEST(Csf, LeavesPreserveSortedOrderAndValues) {
  const CsfTensor csf = build_csf(fig4_tensor(), 0);
  // Slice 2's fiber leaves are k = 0,2,4,5 with values 5..8.
  const offset_t fiber = csf.child_begin(0, 2);
  const offset_t z0 = csf.child_begin(1, fiber);
  EXPECT_EQ(csf.leaf_index(z0), 0u);
  EXPECT_EQ(csf.leaf_index(z0 + 3), 5u);
  EXPECT_FLOAT_EQ(csf.value(z0), 5.0F);
  EXPECT_FLOAT_EQ(csf.value(z0 + 3), 8.0F);
}

TEST(Csf, NonRootModeOrdering) {
  const CsfTensor csf = build_csf(fig4_tensor(), 1);
  EXPECT_EQ(csf.root_mode(), 1u);
  EXPECT_EQ(csf.mode_order(), (ModeOrder{1, 0, 2}));
  EXPECT_EQ(csf.num_slices(), 4u);  // j in {0,1,2,4}
  EXPECT_NO_THROW(csf.validate());
}

TEST(Csf, EmptyTensor) {
  const SparseTensor t({3, 3, 3});
  const CsfTensor csf = build_csf(t, 0);
  EXPECT_EQ(csf.num_slices(), 0u);
  EXPECT_EQ(csf.nnz(), 0u);
  EXPECT_NO_THROW(csf.validate());
}

TEST(Csf, Order2IsDcsr) {
  SparseTensor t({4, 6});
  const index_t coords[][2] = {{0, 1}, {0, 3}, {3, 2}};
  for (const auto& c : coords) t.push_back({c, 2}, 1.0F);
  const CsfTensor csf = build_csf(t, 0);
  EXPECT_EQ(csf.node_levels(), 1u);
  EXPECT_EQ(csf.num_slices(), 2u);  // only non-empty rows (DCSR)
  EXPECT_EQ(csf.num_fibers(), 2u);
  EXPECT_NO_THROW(csf.validate());
}

TEST(Csf, Order4Levels) {
  SparseTensor t({3, 3, 3, 3});
  const index_t coords[][4] = {
      {0, 0, 0, 0}, {0, 0, 0, 2}, {0, 0, 1, 1}, {0, 1, 0, 0}, {2, 2, 2, 2}};
  for (const auto& c : coords) t.push_back({c, 4}, 1.0F);
  const CsfTensor csf = build_csf(t, 0);
  EXPECT_EQ(csf.node_levels(), 3u);
  EXPECT_EQ(csf.num_slices(), 2u);
  EXPECT_EQ(csf.num_nodes(1), 3u);  // (i,j) pairs: (0,0), (0,1), (2,2)
  EXPECT_EQ(csf.num_fibers(), 4u);  // (i,j,k) triples
  EXPECT_NO_THROW(csf.validate());
}

TEST(Csf, BuildFromSortedRequiresSorted) {
  SparseTensor t = fig4_tensor();
  // Scramble: push an out-of-order nonzero.
  const index_t c[] = {0, 4, 4};
  t.push_back({c, 3}, 1.0F);
  EXPECT_THROW(build_csf_from_sorted(t, mode_order_for(0, 3)), Error);
}

TEST(Csf, BuildSortsACopy) {
  const SparseTensor t = fig4_tensor();
  const offset_t before = t.nnz();
  (void)build_csf(t, 2);
  EXPECT_EQ(t.nnz(), before);  // input untouched
}

TEST(Csf, RandomTensorInvariants) {
  PowerLawConfig cfg;
  cfg.dims = {60, 70, 80};
  cfg.target_nnz = 4000;
  cfg.seed = 21;
  const SparseTensor t = generate_power_law(cfg);
  for (index_t mode = 0; mode < 3; ++mode) {
    const CsfTensor csf = build_csf(t, mode);
    EXPECT_EQ(csf.nnz(), t.nnz());
    EXPECT_NO_THROW(csf.validate());
    // Node counts shrink monotonically up the tree.
    EXPECT_LE(csf.num_slices(), csf.num_fibers());
    EXPECT_LE(csf.num_fibers(), csf.nnz());
  }
}

}  // namespace
}  // namespace bcsf
