// End-to-end tests for the tensord front-end (net/server.hpp +
// net/client.hpp, DESIGN.md §9): the full register/query/update dialogue
// over a real unix-domain socket, protocol robustness against malformed
// frames (the server must drop at most the offending CONNECTION, never
// exit), admission control under a saturated one-worker pool, and the
// graceful-shutdown drain guarantee (every accepted query is answered).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/tensor_op_service.hpp"
#include "serve_test_util.hpp"

namespace bcsf::net {
namespace {

/// Unique per-test socket path (unix socket paths are ~100 chars max, so
/// stay in /tmp rather than the build tree).
std::string test_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/bcsf_tensord_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

ServerOptions base_options() {
  ServerOptions opts;
  opts.unix_path = test_socket_path();
  opts.serve.workers = 2;
  opts.serve.shards = 2;
  opts.serve.enable_upgrade = false;  // deterministic formats/timing
  opts.serve.enable_compaction = false;
  return opts;
}

/// Raw client socket for speaking deliberately broken protocol.
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_OK();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
    ASSERT_OK();
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  int fd() const { return fd_; }
  void send_bytes(const void* data, std::size_t n) {
    ASSERT_EQ(::send(fd_, data, n, MSG_NOSIGNAL), static_cast<ssize_t>(n));
  }

 private:
  void ASSERT_OK() { ASSERT_GE(fd_, 0) << "raw connect failed"; }
  int fd_ = -1;
};

/// Polls a stats counter until it reaches `want` (the reader threads
/// process asynchronously) or a deadline passes.
template <typename Getter>
bool wait_for(Getter getter, std::uint64_t want, int timeout_ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (getter() < want) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

QueryMsg make_query(const std::string& tensor, index_t mode,
                    const std::vector<DenseMatrix>& factors,
                    OpKind op = OpKind::kMttkrp) {
  QueryMsg msg;
  msg.tensor = tensor;
  msg.mode = mode;
  msg.op = op;
  msg.factors = factors;
  return msg;
}

// ---------------------------------------------------------------------------
// The happy path: the socket round trip computes exactly what the
// in-process service computes.
// ---------------------------------------------------------------------------

TEST(TensordServer, RegisterQueryUpdateMatchesInProcessService) {
  const std::vector<index_t> dims{40, 30, 20};
  const SparseTensor x = serve_test::exact_tensor(dims, 2500, 51);
  const auto factors = serve_test::exact_factors(dims, 8, 52);
  std::mt19937 rng(53);
  const SparseTensor batch = serve_test::exact_batch(dims, 600, rng);

  // Reference: a monolithic single-worker service (the exact-grid inputs
  // make every path bitwise reproducible, so sharded-over-socket must
  // equal monolithic-in-process).
  ServeOptions ref_opts;
  ref_opts.workers = 1;
  ref_opts.enable_upgrade = false;
  ref_opts.enable_compaction = false;
  TensorOpService reference(ref_opts);
  reference.register_tensor("t", share_tensor(SparseTensor(x)));

  TensorServer server(base_options());
  TensorClient client(server.unix_path());
  client.ping();
  client.register_tensor("t", x);

  for (const index_t mode : {index_t{0}, index_t{1}}) {
    SCOPED_TRACE(mode);
    const ResultMsg res = client.query(make_query("t", mode, *factors));
    const ServeResponse want =
        reference.submit({"t", mode, factors}).get();
    EXPECT_EQ(res.shards, 2u);
    EXPECT_EQ(res.snapshot_version, 0u);
    EXPECT_TRUE(serve_test::bitwise_equal(want.output, res.output));
  }

  // Updates move the version on both sides and stay bitwise equal.
  const std::uint64_t version = client.apply_updates("t", batch);
  EXPECT_GT(version, 0u);
  reference.apply_updates("t", SparseTensor(batch));
  const ResultMsg after = client.query(make_query("t", 0, *factors));
  const ServeResponse want = reference.submit({"t", 0, factors}).get();
  EXPECT_GT(after.delta_nnz, 0u);
  EXPECT_TRUE(serve_test::bitwise_equal(want.output, after.output));

  // FIT rides the same socket: scalar result, empty output.
  const ResultMsg fit =
      client.query(make_query("t", 0, *factors, OpKind::kFit));
  const ServeResponse fit_want =
      reference.submit({"t", 0, factors, OpKind::kFit}).get();
  EXPECT_EQ(fit.scalar, fit_want.scalar);

  const auto stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.requests, 6u);
}

// ---------------------------------------------------------------------------
// Protocol robustness: each malformed frame costs at most the connection.
// ---------------------------------------------------------------------------

TEST(TensordServer, UnknownTagGetsErrorReplyAndKeepsConnection) {
  TensorServer server(base_options());
  RawConn raw(server.unix_path());

  // Unknown-but-well-framed tag: framing stays trustworthy, so the
  // server answers kError and keeps serving THIS connection.
  const auto id_payload = encode_id(99);
  write_frame(raw.fd(), static_cast<MsgType>(200), id_payload);
  Frame reply;
  ASSERT_TRUE(read_frame(raw.fd(), reply));
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(decode_error(reply.payload).id, 99u);

  // The same connection still answers a well-formed ping.
  write_frame(raw.fd(), MsgType::kPing, encode_id(100));
  ASSERT_TRUE(read_frame(raw.fd(), reply));
  EXPECT_EQ(reply.type, MsgType::kAck);
  EXPECT_EQ(decode_ack(reply.payload).id, 100u);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(TensordServer, MalformedFramesDropConnectionButServerStaysUp) {
  TensorServer server(base_options());

  {  // Truncated header: 2 of the 4 length bytes, then EOF.
    RawConn raw(server.unix_path());
    const std::uint8_t half[2] = {0x08, 0x00};
    raw.send_bytes(half, sizeof(half));
  }
  EXPECT_TRUE(wait_for([&] { return server.stats().protocol_errors; }, 1));

  {  // Oversize length: larger than kMaxFramePayload.
    RawConn raw(server.unix_path());
    std::uint8_t header[5] = {};
    const std::uint32_t huge = kMaxFramePayload + 1;
    std::memcpy(header, &huge, sizeof(huge));
    header[4] = static_cast<std::uint8_t>(MsgType::kPing);
    raw.send_bytes(header, sizeof(header));
  }
  EXPECT_TRUE(wait_for([&] { return server.stats().protocol_errors; }, 2));

  {  // Mid-request disconnect: header promises 100 bytes, 10 arrive.
    RawConn raw(server.unix_path());
    std::uint8_t header[5] = {};
    const std::uint32_t len = 100;
    std::memcpy(header, &len, sizeof(len));
    header[4] = static_cast<std::uint8_t>(MsgType::kQuery);
    raw.send_bytes(header, sizeof(header));
    const std::uint8_t partial[10] = {};
    raw.send_bytes(partial, sizeof(partial));
  }
  EXPECT_TRUE(wait_for([&] { return server.stats().protocol_errors; }, 3));

  {  // Well-framed garbage payload: decode_query throws ProtocolError.
    RawConn raw(server.unix_path());
    const std::vector<std::uint8_t> garbage(16, 0xFF);
    write_frame(raw.fd(), MsgType::kQuery, garbage);
  }
  EXPECT_TRUE(wait_for([&] { return server.stats().protocol_errors; }, 4));

  // After four hostile connections the server still serves a real one.
  TensorClient client(server.unix_path());
  client.ping();
  EXPECT_EQ(server.stats().protocol_errors, 4u);
}

// ---------------------------------------------------------------------------
// Admission control under a saturated pool.
// ---------------------------------------------------------------------------

TEST(TensordServer, SaturatedPoolRejectsWithOverloadedAndRecovers) {
  ServerOptions opts = base_options();
  opts.serve.workers = 1;
  opts.serve.shards = 1;
  opts.max_in_flight = 1;  // the second concurrent query must bounce
  TensorServer server(opts);

  const std::vector<index_t> dims{200, 300, 400};
  const SparseTensor x = serve_test::exact_tensor(dims, 200000, 61);
  const auto factors = serve_test::exact_factors(dims, 32, 62);

  TensorClient client(server.unix_path());
  client.register_tensor("t", x);

  // Pipeline a burst: the reader admits (or bounces) them far faster
  // than the single worker can compute 200k-nnz rank-32 MTTKRPs.
  constexpr int kBurst = 24;
  std::vector<std::future<Frame>> in_flight;
  for (int i = 0; i < kBurst; ++i) {
    in_flight.push_back(client.query_async(make_query("t", 0, *factors)));
  }
  int results = 0;
  int overloaded = 0;
  for (auto& f : in_flight) {
    const Frame frame = f.get();
    if (frame.type == MsgType::kResult) {
      ++results;
    } else if (frame.type == MsgType::kOverloaded) {
      ++overloaded;
    } else {
      ADD_FAILURE() << "unexpected reply type "
                    << static_cast<int>(frame.type);
    }
  }
  EXPECT_EQ(results + overloaded, kBurst);
  EXPECT_GE(results, 1) << "admission must never reject an idle server";
  EXPECT_GE(overloaded, 1) << "a 1-deep admission window must bounce a burst";
  EXPECT_EQ(server.stats().rejected, static_cast<std::uint64_t>(overloaded));

  // Rejection is about LOAD, not state: the drained server serves again.
  const ResultMsg ok = client.query(make_query("t", 0, *factors));
  EXPECT_EQ(ok.output.rows(), dims[0]);
}

// ---------------------------------------------------------------------------
// Graceful shutdown drains every accepted query.
// ---------------------------------------------------------------------------

TEST(TensordServer, GracefulShutdownAnswersEveryAcceptedQuery) {
  ServerOptions opts = base_options();
  opts.max_in_flight = 64;
  opts.queue_watermark = 1024;  // admission is not under test here
  TensorServer server(opts);

  const std::vector<index_t> dims{48, 36, 24};
  const SparseTensor x = serve_test::exact_tensor(dims, 3000, 71);
  const auto factors = serve_test::exact_factors(dims, 8, 72);

  TensorClient client(server.unix_path());
  client.register_tensor("t", x);

  constexpr int kQueries = 8;
  std::vector<std::future<Frame>> in_flight;
  for (int i = 0; i < kQueries; ++i) {
    in_flight.push_back(client.query_async(
        make_query("t", static_cast<index_t>(i % dims.size()), *factors)));
  }
  // Shutdown lands behind the queries on the same connection: all of
  // them were accepted first, so ALL must be answered before the server
  // exits -- the zero-stranded-futures guarantee.
  client.shutdown_server();
  server.wait();
  server.stop();

  for (auto& f : in_flight) {
    const Frame frame = f.get();  // a stranded future would hang/throw here
    EXPECT_EQ(frame.type, MsgType::kResult);
  }
  const auto stats = server.stats();
  EXPECT_GE(stats.requests, static_cast<std::uint64_t>(kQueries) + 2);
  EXPECT_EQ(stats.rejected, 0u);
}

}  // namespace
}  // namespace bcsf::net
