// Eviction-oracle tests for the service-wide storage budget (DESIGN.md
// §10): heat-ordered eviction must be PREDICTABLE BY HAND, eviction must
// never change an answer (the evicted tenant falls back to the COO plan,
// which with exact-grid inputs is bitwise the structured answer), a
// re-heated tenant re-earns the threshold and rebuilds exactly once
// (single-flight), and the background reclaimer force-compacts delta
// chunks when they -- not plans -- carry the weight.
//
// The oracle works because heat is keyed to a LOGICAL tick (one tick per
// shard-handled request), not wall time: with one worker and one shard
// the whole heat/eviction history is a pure function of the request
// sequence, so the test can compute the eviction order on paper.
//
// Carries the `concurrency` ctest label: the chaos section drives a
// budgeted multi-tenant service from 8 raw threads under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/format_registry.hpp"
#include "serve/tensor_op_service.hpp"
#include "serve_test_util.hpp"

namespace bcsf {
namespace {

using serve_test::bitwise_equal;
using serve_test::exact_batch;
using serve_test::exact_factors;
using serve_test::exact_tensor;
using serve_test::run_threads;

/// Injectable plan factory that counts structured (non-COO-family)
/// builds -- the single-flight witness.
ConcurrentPlanCache::BuildFn counting_build_fn(
    std::atomic<int>& structured_builds) {
  return [&structured_builds](const std::string& format,
                              const SparseTensor& tensor, index_t mode,
                              const PlanOptions& opts) {
    if (!ConcurrentPlanCache::coo_family(format)) {
      structured_builds.fetch_add(1, std::memory_order_relaxed);
    }
    return FormatRegistry::instance().create(format, tensor, mode, opts);
  };
}

/// The oracle configuration: one worker, one shard, a concrete upgrade
/// target, threshold 2, decay 1/2 -- every quantity below is exactly
/// computable from the request sequence.
ServeOptions oracle_options() {
  ServeOptions opts;
  opts.workers = 1;
  opts.shards = 1;
  opts.upgrade_format = "bcsf";
  opts.upgrade_threshold = 2;
  opts.heat_decay = 0.5;
  opts.enable_compaction = false;
  return opts;
}

/// Bytes one structured plan of `tensor` charges, measured on an
/// unbudgeted probe service with the identical configuration (plan
/// builds are deterministic, so the budgeted service's plans are the
/// same size).
std::size_t measure_plan_bytes(const SparseTensor& tensor,
                               const FactorsPtr& factors) {
  TensorOpService probe(oracle_options());
  probe.register_tensor("probe", share_tensor(SparseTensor(tensor)));
  for (int i = 0; i < 2; ++i) {
    (void)probe.submit({"probe", 0, factors}).get();
  }
  probe.wait_idle();
  EXPECT_TRUE(probe.upgraded("probe", 0));
  return probe.plan_resident_bytes();
}

// ---------------------------------------------------------------------------
// The hand-computable oracle.  Tenants A, B, C hold COPIES OF THE SAME
// tensor (equal plan bytes); the budget fits exactly two plans.
//
//   ticks 1-2: two queries on A -> A upgrades, heat_A = 1.5 @ t2
//   ticks 3-4: two queries on B -> B upgrades (2 plans = budget full),
//              heat_B = 1.5 @ t4
//   ticks 5-6: two queries on C -> C's build admits.  At t6:
//              heat_A = 1.5 * 0.5^4 = 0.094,  heat_B = 1.5 * 0.5^2 =
//              0.375, incoming heat_C = 1.5.  Eviction is coldest-first
//              and strictly-colder-only: A is evicted, B survives.
//   ticks 7-8: two queries on A (the first serves bitwise-correct COO,
//              eviction zeroed the counters so the threshold is
//              RE-EARNED) -> A rebuilds; at t8 B (0.094) is colder than
//              C (0.375), so B is evicted.
// ---------------------------------------------------------------------------

TEST(BudgetEviction, HeatOracleEvictsColdestAndAnswersStayBitwise) {
  const std::vector<index_t> dims{28, 22, 16};
  const SparseTensor tensor = exact_tensor(dims, 1600, 201);
  const auto factors = exact_factors(dims, 5, 202);

  const std::size_t plan_bytes = measure_plan_bytes(tensor, factors);
  ASSERT_GT(plan_bytes, 0u);

  ServeOptions opts = oracle_options();
  opts.storage_budget_bytes = 2 * plan_bytes + plan_bytes / 2;
  std::atomic<int> structured_builds{0};
  opts.build_fn = counting_build_fn(structured_builds);
  TensorOpService service(opts);
  for (const char* name : {"A", "B", "C"}) {
    service.register_tensor(name, share_tensor(SparseTensor(tensor)));
  }

  // Reference answers from a never-upgrading service: eviction and COO
  // fallback may never change a single bit.
  ServeOptions ref_opts;
  ref_opts.workers = 1;
  ref_opts.enable_upgrade = false;
  ref_opts.enable_compaction = false;
  TensorOpService reference(ref_opts);
  reference.register_tensor("ref", share_tensor(SparseTensor(tensor)));
  const DenseMatrix expected =
      reference.submit({"ref", 0, factors}).get().output;

  auto drive = [&](const std::string& name) {
    ServeResponse last;
    for (int i = 0; i < 2; ++i) {
      last = service.submit({name, 0, factors}).get();
      EXPECT_TRUE(bitwise_equal(expected, last.output)) << name;
    }
    service.wait_idle();
    return last;
  };

  drive("A");
  EXPECT_TRUE(service.upgraded("A", 0));
  EXPECT_EQ(service.plan_resident_bytes(), plan_bytes);

  drive("B");
  EXPECT_TRUE(service.upgraded("B", 0));
  EXPECT_EQ(service.plan_resident_bytes(), 2 * plan_bytes);
  EXPECT_EQ(service.eviction_count(), 0u);

  drive("C");
  EXPECT_TRUE(service.upgraded("C", 0));
  EXPECT_TRUE(service.upgraded("B", 0)) << "evicted B instead of colder A";
  EXPECT_FALSE(service.upgraded("A", 0)) << "A survived past the budget";
  EXPECT_EQ(service.eviction_count(), 1u);
  EXPECT_EQ(service.plan_resident_bytes(), 2 * plan_bytes);

  // The evicted tenant answers from the COO fallback, bitwise.
  const ServeResponse coo = service.submit({"A", 0, factors}).get();
  EXPECT_TRUE(bitwise_equal(expected, coo.output));
  EXPECT_FALSE(coo.upgraded);
  service.wait_idle();
  // One post-eviction call does NOT rebuild: eviction zeroed the
  // counters, so the threshold must be re-earned (no thrash on a single
  // stray call).
  EXPECT_FALSE(service.upgraded("A", 0));

  // Second call re-crosses the threshold: A rebuilds (single-flight, so
  // exactly one more structured build) and now-coldest B is evicted.
  const ServeResponse rebuilt = service.submit({"A", 0, factors}).get();
  EXPECT_TRUE(bitwise_equal(expected, rebuilt.output));
  service.wait_idle();
  EXPECT_TRUE(service.upgraded("A", 0));
  EXPECT_FALSE(service.upgraded("B", 0)) << "expected B evicted on re-heat";
  EXPECT_TRUE(service.upgraded("C", 0));
  EXPECT_EQ(service.eviction_count(), 2u);
  EXPECT_EQ(structured_builds.load(), 4) << "A,B,C initial + A rebuild";
  EXPECT_LE(service.plan_resident_bytes(), opts.storage_budget_bytes);
  EXPECT_LE(service.peak_plan_resident_bytes(), opts.storage_budget_bytes)
      << "pre-charge admission overshot the budget at some instant";

  // Per-tenant accounting matches the story.
  for (const TensorOpService::TenantStats& t : service.tenant_stats()) {
    if (t.name == "A" || t.name == "B") {
      EXPECT_EQ(t.evictions, 1u) << t.name;
    } else if (t.name == "C") {
      EXPECT_EQ(t.evictions, 0u);
      EXPECT_GT(t.plan_bytes, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Single-flight: 8 threads hammering one tensor past the threshold
// trigger exactly ONE structured build.
// ---------------------------------------------------------------------------

TEST(BudgetEviction, ConcurrentThresholdCrossingBuildsOnce) {
  const std::vector<index_t> dims{24, 20, 16};
  const SparseTensor tensor = exact_tensor(dims, 1200, 211);
  const auto factors = exact_factors(dims, 4, 212);

  ServeOptions opts = oracle_options();
  opts.workers = 4;
  std::atomic<int> structured_builds{0};
  opts.build_fn = counting_build_fn(structured_builds);
  TensorOpService service(opts);
  service.register_tensor("D", share_tensor(SparseTensor(tensor)));

  std::atomic<int> mismatches{0};
  ServeOptions ref_opts;
  ref_opts.workers = 1;
  ref_opts.enable_upgrade = false;
  ref_opts.enable_compaction = false;
  TensorOpService reference(ref_opts);
  reference.register_tensor("ref", share_tensor(SparseTensor(tensor)));
  const DenseMatrix expected =
      reference.submit({"ref", 0, factors}).get().output;

  run_threads(8, [&](int) {
    for (int i = 0; i < 3; ++i) {
      const ServeResponse response = service.submit({"D", 0, factors}).get();
      if (!bitwise_equal(expected, response.output)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  service.wait_idle();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(service.upgraded("D", 0));
  EXPECT_EQ(structured_builds.load(), 1)
      << "threshold crossed concurrently must still build single-flight";
}

// ---------------------------------------------------------------------------
// Chaos: 8 threads, 6 tenants, a budget sized to a fraction of the
// fleet's appetite.  Invariants checked from INSIDE the storm: every
// answer bitwise-correct, plan residency never above the budget (it is
// <= budget at EVERY instant by pre-charge admission, so sampling it
// from racing threads can never catch an overshoot).
// ---------------------------------------------------------------------------

TEST(BudgetEviction, ChaosRespectsBudgetAndBitwiseAnswers) {
  const std::vector<index_t> dims{24, 20, 16};
  constexpr int kTenants = 6;
  std::vector<SparseTensor> tensors;
  tensors.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tensors.push_back(exact_tensor(dims, 1100 + 100 * t, 221 + t));
  }
  const auto factors = exact_factors(dims, 4, 231);

  ServeOptions opts;
  opts.workers = 4;
  opts.shards = 2;
  opts.upgrade_format = "bcsf";
  opts.upgrade_threshold = 1;
  opts.heat_decay = 0.5;
  opts.enable_compaction = false;

  // Budget: ~the residency of one fully-upgraded tenant mode, so the 18
  // (tenant, mode) slot groups must fight over it.
  std::size_t one_mode_bytes = 0;
  {
    TensorOpService probe(opts);
    probe.register_tensor("probe", share_tensor(SparseTensor(tensors[0])));
    (void)probe.submit({"probe", 0, factors}).get();
    probe.wait_idle();
    one_mode_bytes = probe.plan_resident_bytes();
  }
  ASSERT_GT(one_mode_bytes, 0u);
  opts.storage_budget_bytes = 3 * one_mode_bytes;

  TensorOpService service(opts);
  std::vector<std::string> names;
  for (int t = 0; t < kTenants; ++t) {
    names.push_back("t" + std::to_string(t));
    service.register_tensor(names.back(),
                            share_tensor(SparseTensor(tensors[t])));
  }

  // Reference answers per (tenant, mode) from a monolithic
  // never-upgrading service.
  ServeOptions ref_opts;
  ref_opts.workers = 1;
  ref_opts.enable_upgrade = false;
  ref_opts.enable_compaction = false;
  TensorOpService reference(ref_opts);
  std::vector<std::vector<DenseMatrix>> expected(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    reference.register_tensor(names[t],
                              share_tensor(SparseTensor(tensors[t])));
    for (index_t mode = 0; mode < 3; ++mode) {
      expected[t].push_back(
          reference.submit({names[t], mode, factors}).get().output);
    }
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> budget_violations{0};
  run_threads(8, [&](int thread) {
    for (int i = 0; i < 40; ++i) {
      // Zipf-ish skew: most traffic on tenants 0/1, the tail cold.
      const int tenant = (i % 3 != 0) ? (i + thread) % 2 : (i + thread) % 6;
      const index_t mode = static_cast<index_t>((2 * i + thread) % 3);
      const ServeResponse response =
          service.submit({names[tenant], mode, factors}).get();
      if (!bitwise_equal(expected[tenant][mode], response.output)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      if (service.plan_resident_bytes() > opts.storage_budget_bytes) {
        budget_violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  service.wait_idle();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(budget_violations.load(), 0);
  EXPECT_LE(service.plan_resident_bytes(), opts.storage_budget_bytes);
  EXPECT_LE(service.peak_plan_resident_bytes(), opts.storage_budget_bytes);
  // 18 slot groups cannot fit in ~3 slots' worth of budget: the run must
  // have either evicted plans or rejected finished builds.
  EXPECT_GT(service.eviction_count() + service.upgrade_reject_count(), 0u);
}

// ---------------------------------------------------------------------------
// Delta reclaim: with plans out of the picture (upgrades off) and
// organic compaction gated shut, only the reclaimer's FORCE path can
// absorb delta chunks -- a tiny budget must drive it, and the merged
// answers must stay bitwise.
// ---------------------------------------------------------------------------

TEST(BudgetEviction, ReclaimForceCompactsDeltaOverBudget) {
  const std::vector<index_t> dims{26, 22, 18};
  const SparseTensor tensor = exact_tensor(dims, 2400, 241);
  const auto factors = exact_factors(dims, 5, 242);
  std::mt19937 rng(243);
  std::vector<SparseTensor> batches;
  for (int k = 0; k < 3; ++k) {
    batches.push_back(exact_batch(dims, 400, rng));
  }

  ServeOptions opts;
  opts.workers = 2;
  opts.shards = 2;
  opts.enable_upgrade = false;
  opts.enable_compaction = true;
  // Organic compaction can never fire: the force path is the only way
  // these thresholds are ever crossed.
  opts.compact_threshold = 0.95;
  opts.compact_min_nnz = static_cast<offset_t>(1) << 30;
  opts.storage_budget_bytes = 1;
  TensorOpService service(opts);
  service.register_tensor("wet", share_tensor(SparseTensor(tensor)));

  ServeOptions ref_opts;
  ref_opts.workers = 1;
  ref_opts.enable_upgrade = false;
  ref_opts.enable_compaction = false;
  TensorOpService reference(ref_opts);
  reference.register_tensor("ref", share_tensor(SparseTensor(tensor)));

  for (const SparseTensor& batch : batches) {
    service.apply_updates("wet", SparseTensor(batch));
    reference.apply_updates("ref", SparseTensor(batch));
    // Idle barrier per batch: each apply's reclaim pass completes before
    // the next adds delta, so nothing slips past a still-running pass.
    service.wait_idle();
    EXPECT_EQ(service.delta_resident_bytes(), 0u)
        << "reclaimer left delta resident over a 1-byte budget";
  }
  EXPECT_GE(service.compaction_count("wet"), 1u);
  EXPECT_EQ(service.plan_resident_bytes(), 0u);
  EXPECT_EQ(service.resident_bytes(), 0u);

  const DenseMatrix expected =
      reference.submit({"ref", 1, factors}).get().output;
  const ServeResponse merged = service.submit({"wet", 1, factors}).get();
  EXPECT_TRUE(bitwise_equal(expected, merged.output));
  EXPECT_EQ(merged.delta_nnz, 0) << "compacted shards still carry delta";
}

}  // namespace
}  // namespace bcsf
