// Tests for the slice/fiber statistics module, anchored on the paper's
// worked example (Fig. 4): a tensor with S = 3 slices, F = 5 fibers and
// M = 8 nonzeros whose three slices are exactly one COO candidate, one
// CSL candidate and one CSF slice.
#include <gtest/gtest.h>

#include "tensor/sparse_tensor.hpp"
#include "tensor/tensor_stats.hpp"

namespace bcsf {
namespace {

/// The Fig. 4 tensor: slice 0 has a single nonzero; slice 1 has three
/// singleton fibers; slice 2 has one fiber with four nonzeros.
SparseTensor fig4_tensor() {
  SparseTensor t({3, 5, 6});
  const index_t coords[][3] = {
      {0, 1, 2},                            // slice 0: COO candidate
      {1, 0, 0}, {1, 2, 3}, {1, 4, 1},      // slice 1: CSL candidate
      {2, 1, 0}, {2, 1, 2}, {2, 1, 4}, {2, 1, 5},  // slice 2: CSF
  };
  value_t v = 1.0F;
  for (const auto& c : coords) t.push_back({c, 3}, v++);
  return t;
}

TEST(TensorStats, Fig4SliceAndFiberCounts) {
  const ModeStats s = compute_mode_stats(fig4_tensor(), 0);
  EXPECT_EQ(s.num_slices, 3u);   // S = 3, as in the paper
  EXPECT_EQ(s.num_fibers, 5u);   // F = 5
  EXPECT_EQ(s.nnz, 8u);          // M = 8
}

TEST(TensorStats, Fig4Classification) {
  const ModeStats s = compute_mode_stats(fig4_tensor(), 0);
  // One of three slices is a singleton (COO), one is all-singleton-fiber
  // (CSL); the remaining slice is CSF.
  EXPECT_NEAR(s.singleton_slice_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.csl_slice_fraction, 1.0 / 3.0, 1e-12);
}

TEST(TensorStats, Fig4PerSliceDistribution) {
  const ModeStats s = compute_mode_stats(fig4_tensor(), 0);
  EXPECT_DOUBLE_EQ(s.nnz_per_slice.min, 1.0);
  EXPECT_DOUBLE_EQ(s.nnz_per_slice.max, 4.0);
  EXPECT_NEAR(s.nnz_per_slice.mean, 8.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.nnz_per_fiber.max, 4.0);
  EXPECT_NEAR(s.nnz_per_fiber.mean, 8.0 / 5.0, 1e-12);
}

TEST(TensorStats, CountScanMatchesManual) {
  SparseTensor t = fig4_tensor();
  const ModeOrder order = mode_order_for(0, 3);
  t.sort(order);
  const SliceFiberCounts c = count_slices_and_fibers(t, order);
  EXPECT_EQ(c.slice_index, (index_vec{0, 1, 2}));
  EXPECT_EQ(c.slice_nnz, (offset_vec{1, 3, 4}));
  EXPECT_EQ(c.fiber_nnz, (offset_vec{1, 1, 1, 1, 4}));
  EXPECT_EQ(c.slice_fiber_begin, (offset_vec{0, 1, 4, 5}));
}

TEST(TensorStats, OtherModesDifferStructurally) {
  const SparseTensor t = fig4_tensor();
  const ModeStats m1 = compute_mode_stats(t, 1);
  // Mode 1 has slices at j in {0,1,2,4}; j=1 collects 5 nonzeros.
  EXPECT_EQ(m1.num_slices, 4u);
  EXPECT_DOUBLE_EQ(m1.nnz_per_slice.max, 5.0);
}

TEST(TensorStats, EmptyTensor) {
  const SparseTensor t({3, 3, 3});
  const ModeStats s = compute_mode_stats(t, 0);
  EXPECT_EQ(s.num_slices, 0u);
  EXPECT_EQ(s.num_fibers, 0u);
}

TEST(TensorStats, AllModesCoverEveryMode) {
  const auto all = compute_all_mode_stats(fig4_tensor());
  ASSERT_EQ(all.size(), 3u);
  for (index_t m = 0; m < 3; ++m) {
    EXPECT_EQ(all[m].mode, m);
    EXPECT_EQ(all[m].nnz, 8u);
  }
}

TEST(TensorStats, Order2FiberEqualsSlice) {
  SparseTensor t({4, 4});
  const index_t coords[][2] = {{0, 1}, {0, 2}, {3, 0}};
  for (const auto& c : coords) t.push_back({c, 2}, 1.0F);
  const ModeStats s = compute_mode_stats(t, 0);
  EXPECT_EQ(s.num_slices, 2u);
  EXPECT_EQ(s.num_fibers, 2u);  // in a matrix, rows are both
}

}  // namespace
}  // namespace bcsf
