// Tests for CSL and HB-CSF (the paper's second contribution): the Alg. 5
// slice classification, partition completeness, and the Fig. 4 storage
// walk-through (COO 24 words, CSF 24 words, HB-CSF 19 words).
#include <gtest/gtest.h>

#include "core/factors.hpp"
#include "formats/csl.hpp"
#include "formats/hbcsf.hpp"
#include "formats/storage.hpp"
#include "kernels/mttkrp.hpp"
#include "tensor/generator.hpp"
#include "tensor/tensor_stats.hpp"
#include "util/error.hpp"

namespace bcsf {
namespace {

SparseTensor fig4_tensor() {
  SparseTensor t({3, 5, 6});
  const index_t coords[][3] = {
      {0, 1, 2},
      {1, 0, 0}, {1, 2, 3}, {1, 4, 1},
      {2, 1, 0}, {2, 1, 2}, {2, 1, 4}, {2, 1, 5},
  };
  value_t v = 1.0F;
  for (const auto& c : coords) t.push_back({c, 3}, v++);
  return t;
}

TEST(Csl, BuildAndAccess) {
  const CslTensor csl = build_csl(fig4_tensor(), 0);
  EXPECT_EQ(csl.num_slices(), 3u);
  EXPECT_EQ(csl.nnz(), 8u);
  EXPECT_NO_THROW(csl.validate());
  EXPECT_EQ(csl.slice_index(1), 1u);
  EXPECT_EQ(csl.slice_end(1) - csl.slice_begin(1), 3u);
  // Nonzero coordinates: position 0 = mode 1 (j), position 1 = mode 2 (k).
  EXPECT_EQ(csl.nz_index(0, csl.slice_begin(0)), 1u);
  EXPECT_EQ(csl.nz_index(1, csl.slice_begin(0)), 2u);
}

TEST(Csl, StorageFormula) {
  const CslTensor csl = build_csl(fig4_tensor(), 0);
  // 2S + (order-1)M words = 2*3 + 2*8 = 22.
  EXPECT_EQ(csl.index_storage_bytes(), 22u * kIndexBytes);
}

TEST(Csl, EmptyTensor) {
  const CslTensor csl = build_csl(SparseTensor({2, 2, 2}), 0);
  EXPECT_EQ(csl.num_slices(), 0u);
  EXPECT_NO_THROW(csl.validate());
}

TEST(Hbcsf, Fig4Classification) {
  const HbcsfTensor h = build_hbcsf(fig4_tensor(), 0);
  EXPECT_EQ(h.coo_nnz(), 1u);  // slice 0
  EXPECT_EQ(h.csl_nnz(), 3u);  // slice 1
  EXPECT_EQ(h.csf_nnz(), 4u);  // slice 2
  EXPECT_EQ(h.nnz(), 8u);
  EXPECT_NO_THROW(h.validate());
}

TEST(Hbcsf, Fig4StorageIs19Words) {
  // The paper's walk-through: COO 24 words, CSF 24 words, HB-CSF 19 words.
  const SparseTensor x = fig4_tensor();
  EXPECT_EQ(coo_storage(x).bytes, 24u * kIndexBytes);
  EXPECT_EQ(csf_storage(x, 0).bytes, 24u * kIndexBytes);
  EXPECT_EQ(hbcsf_storage(x, 0).bytes, 19u * kIndexBytes);
}

TEST(Hbcsf, CooGroupHoldsSingletonSlices) {
  const HbcsfTensor h = build_hbcsf(fig4_tensor(), 0);
  EXPECT_EQ(h.coo_index(0, 0), 0u);  // root coordinate of slice 0
  EXPECT_EQ(h.coo_index(1, 0), 1u);
  EXPECT_EQ(h.coo_index(2, 0), 2u);
  EXPECT_FLOAT_EQ(h.coo_value(0), 1.0F);
}

TEST(Hbcsf, PartitionMatchesModeStats) {
  PowerLawConfig cfg;
  cfg.dims = {300, 100, 80};
  cfg.target_nnz = 3000;
  cfg.singleton_slice_frac = 0.3;
  cfg.fixed_fiber_len = 1;  // CSL-heavy
  cfg.seed = 41;
  const SparseTensor x = generate_power_law(cfg);
  const ModeStats stats = compute_mode_stats(x, 0);
  const HbcsfTensor h = build_hbcsf(x, 0);

  // Singleton slices == COO group size (by slices == by nonzeros here).
  const auto expected_coo = static_cast<offset_t>(
      std::llround(stats.singleton_slice_fraction *
                   static_cast<double>(stats.num_slices)));
  EXPECT_EQ(h.coo_nnz(), expected_coo);
  // All fibers are singletons, so everything else is CSL.
  EXPECT_EQ(h.csf_nnz(), 0u);
  EXPECT_EQ(h.coo_nnz() + h.csl_nnz(), x.nnz());
}

TEST(Hbcsf, MixedTensorPartitionsEverything) {
  PowerLawConfig cfg;
  cfg.dims = {200, 60, 120};
  cfg.target_nnz = 5000;
  cfg.singleton_slice_frac = 0.1;
  cfg.fiber_alpha = 0.6;
  cfg.max_fiber_len = 100;
  cfg.seed = 42;
  const SparseTensor x = generate_power_law(cfg);
  const HbcsfTensor h = build_hbcsf(x, 0);
  EXPECT_EQ(h.nnz(), x.nnz());
  EXPECT_GT(h.coo_nnz(), 0u);
  EXPECT_GT(h.csf_nnz(), 0u);
  EXPECT_NO_THROW(h.validate());
}

TEST(Hbcsf, MttkrpMatchesReferenceAllModes) {
  PowerLawConfig cfg;
  cfg.dims = {80, 90, 100};
  cfg.target_nnz = 4000;
  cfg.singleton_slice_frac = 0.2;
  cfg.seed = 43;
  const SparseTensor x = generate_power_law(cfg);
  const auto factors = make_random_factors(x.dims(), 8, 88);
  for (index_t mode = 0; mode < 3; ++mode) {
    const HbcsfTensor h = build_hbcsf(x, mode);
    const DenseMatrix ref = mttkrp_reference(x, mode, factors);
    const GpuMttkrpResult r =
        mttkrp_hbcsf_gpu(h, factors, DeviceModel::tiny());
    EXPECT_LT(ref.max_abs_diff(r.output), 2e-2) << "mode " << mode;
  }
}

TEST(Hbcsf, StorageNeverExceedsCsf) {
  // HB-CSF "consistently occupies less space than CSF" (SS VI-F).
  PowerLawConfig cfg;
  cfg.dims = {400, 300, 200};
  cfg.target_nnz = 8000;
  cfg.singleton_slice_frac = 0.25;
  cfg.seed = 44;
  const SparseTensor x = generate_power_law(cfg);
  for (index_t mode = 0; mode < 3; ++mode) {
    EXPECT_LE(hbcsf_storage(x, mode).bytes, csf_storage(x, mode).bytes)
        << "mode " << mode;
  }
}

TEST(Hbcsf, Order4Classification) {
  PowerLawConfig cfg;
  cfg.dims = {60, 20, 25, 30};
  cfg.target_nnz = 2000;
  cfg.singleton_slice_frac = 0.2;
  cfg.fixed_fiber_len = 1;
  cfg.seed = 45;
  const SparseTensor x = generate_power_law(cfg);
  const HbcsfTensor h = build_hbcsf(x, 0);
  EXPECT_EQ(h.nnz(), x.nnz());
  EXPECT_GT(h.coo_nnz(), 0u);
  EXPECT_GT(h.csl_nnz(), 0u);
  EXPECT_NO_THROW(h.validate());

  const auto factors = make_random_factors(x.dims(), 4, 99);
  const DenseMatrix ref = mttkrp_reference(x, 0, factors);
  const GpuMttkrpResult r = mttkrp_hbcsf_gpu(h, factors, DeviceModel::tiny());
  EXPECT_LT(ref.max_abs_diff(r.output), 2e-2);
}

}  // namespace
}  // namespace bcsf
