// Ablation (the paper's future work, §VIII): index reordering.  Compares
// the original labeling, a random relabeling, and a heavy-first
// (degree-sorted) relabeling of the root mode, for the plain GPU-CSF and
// B-CSF kernels.  Heavy-first helps the *unsplit* kernel (the giant
// blocks enter the grid first and drain while small blocks fill in), and
// matters much less once B-CSF has already balanced the work -- i.e.
// reordering and splitting are partially redundant remedies.
#include "bench_util.hpp"
#include "tensor/reorder.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Ablation -- root-mode reordering (mode 1)",
               "original vs random vs heavy-first labeling; GPU-CSF and "
               "B-CSF kernels");

  const DeviceModel device = DeviceModel::p100();
  Table table({"tensor", "labeling", "GPU-CSF GF", "B-CSF GF",
               "csf sm_eff %"});

  for (const std::string& name :
       {std::string("nell2"), std::string("darpa"), std::string("deli")}) {
    for (const std::string& labeling :
         {std::string("original"), std::string("random"),
          std::string("heavy-first")}) {
      SparseTensor x = twin(name);  // copy; relabelings mutate
      if (labeling == "random") {
        apply_relabeling(x, 0, random_relabeling(x.dim(0), 777));
      } else if (labeling == "heavy-first") {
        apply_relabeling(x, 0, degree_sorted_relabeling(x, 0));
      }
      const auto factors = make_random_factors(x.dims(), kPaperRank, 4242);
      const CsfTensor csf = build_csf(x, 0);
      const SimReport plain = mttkrp_csf_gpu(csf, factors, device).report;
      const BcsfTensor b = build_bcsf_from_csf(csf, BcsfOptions{});
      const SimReport split = mttkrp_bcsf_gpu(b, factors, device).report;
      table.row(name, labeling, plain.gflops, split.gflops,
                plain.sm_efficiency_pct);
    }
  }
  table.print();
  std::cout << "\nExpected shape: labeling shifts GPU-CSF noticeably "
               "(heavy-first drains giant slices early) but barely moves "
               "B-CSF, whose splitting already removed the imbalance.\n";
  return 0;
}
