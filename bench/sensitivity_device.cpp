// Sensitivity study: do the paper's conclusions survive a different
// device?  Runs the Fig. 8 comparison (COO vs B-CSF vs HB-CSF, mode 1)
// on the P100 model and on a V100 model (more SMs, bigger L2, faster
// clock and dispatcher).  The *winners* should be invariant: hybrid
// format selection is about tensor structure, not one GPU's parameters.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Sensitivity -- format ranking across device models (mode 1)",
               "P100 (paper) vs V100; winners should match per tensor");

  Table table({"tensor", "device", "COO GF", "B-CSF GF", "HB-CSF GF",
               "winner"});
  for (const std::string& name : three_order_dataset_names()) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);
    const BcsfTensor b = build_bcsf(x, 0);
    const HbcsfTensor h = build_hbcsf(x, 0);
    for (const DeviceModel& device :
         {DeviceModel::p100(), DeviceModel::v100()}) {
      const double coo = mttkrp_coo_gpu(x, 0, factors, device).report.gflops;
      const double bc = mttkrp_bcsf_gpu(b, factors, device).report.gflops;
      const double hb = mttkrp_hbcsf_gpu(h, factors, device).report.gflops;
      const char* best = hb >= bc && hb >= coo ? "HB-CSF"
                         : (bc >= coo ? "B-CSF" : "COO");
      table.row(name, device.name, coo, bc, hb, std::string(best));
    }
  }
  table.print();
  std::cout << "\nExpected shape: per-tensor winners identical on both "
               "devices (B-CSF or a B-CSF/HB-CSF tie on the CSF-dominated "
               "tensors, HB-CSF on the singleton-fiber ones); V100 "
               "uniformly faster.\n";
  return 0;
}
