// Figure 12: HB-CSF speedup over SPLATT-CPU without tiling (paper average
// ~9x -- the honest CPU baseline).
#include "speedup_common.hpp"

int main() {
  return bcsf::bench::run_speedup_figure(
      "Figure 12 -- HB-CSF vs SPLATT-CPU-nontiled",
      bcsf::bench::splatt_baseline(false), 9.0);
}
