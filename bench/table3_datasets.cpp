// Table III: the dataset inventory.  For each tensor: the paper's
// published order/dimensions/nonzeros/density next to the generated
// scaled twin's actual numbers, plus the twin's structural signature
// (so the match with Table II's stddev columns can be audited).
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Table III -- sparse tensor datasets",
               "paper tensors vs generated ~1/100-scale synthetic twins");

  Table table({"tensor", "order", "paper dims", "paper nnz", "paper density",
               "twin dims", "twin nnz", "twin density"});
  for (const DatasetSpec& spec : paper_datasets()) {
    const SparseTensor& x = twin(spec.name);
    std::ostringstream pd;
    for (std::size_t m = 0; m < spec.paper_dims.size(); ++m) {
      if (m) pd << " x ";
      pd << spec.paper_dims[m];
    }
    table.row(spec.name, static_cast<int>(spec.order), pd.str(),
              std::to_string(spec.paper_nnz), spec.paper_density,
              x.shape_string(), std::to_string(x.nnz()), x.density());
  }
  table.print();

  std::cout << "\nPer-mode structure of the twins (drives every experiment):\n";
  Table detail({"tensor", "mode", "slices", "fibers", "avg nnz/slc",
                "stdev nnz/slc", "avg nnz/fbr", "stdev nnz/fbr",
                "coo-slice %", "csl-slice %"});
  for (const DatasetSpec& spec : paper_datasets()) {
    const SparseTensor& x = twin(spec.name);
    for (index_t mode = 0; mode < x.order(); ++mode) {
      const ModeStats s = compute_mode_stats(x, mode);
      detail.row(spec.name, static_cast<int>(mode),
                 std::to_string(s.num_slices), std::to_string(s.num_fibers),
                 s.nnz_per_slice.mean, s.nnz_per_slice.stddev,
                 s.nnz_per_fiber.mean, s.nnz_per_fiber.stddev,
                 100.0 * s.singleton_slice_fraction,
                 100.0 * s.csl_slice_fraction);
    }
  }
  detail.print();
  return 0;
}
