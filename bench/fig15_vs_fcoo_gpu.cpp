// Figure 15: HB-CSF speedup over F-COO (paper average ~4x; 4-D rows are
// n/a because F-COO does not support order > 3).
#include "speedup_common.hpp"

int main() {
  return bcsf::bench::run_speedup_figure("Figure 15 -- HB-CSF vs FCOO-GPU",
                                         bcsf::bench::gpu_baseline("fcoo"),
                                         4.0);
}
