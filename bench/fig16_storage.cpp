// Figure 16: index storage of every registered GPU format.  The
// mode-oriented formats (FCOO, CSF family, HB-CSF) keep N representations
// for an N-order tensor, so the figure sums all modes; mode-agnostic COO
// keeps one.  The format list and the per-format mode-orientation flag
// both come from the FormatRegistry, so a new format lands in this figure
// without touching it.
// Expected shape: HB-CSF consistently below CSF (no redundant pointers);
// FCOO below both on tensors with sparse fibers/slices (bit flags instead
// of index words).
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Figure 16 -- index storage (all-mode representations)",
               "megabytes of index data; values excluded, as in the paper");

  const FormatRegistry& registry = FormatRegistry::instance();
  const std::vector<std::string> formats = registry.names(PlanKind::kGpu);

  std::vector<std::string> headers{"tensor"};
  for (const std::string& f : formats) {
    const auto& e = registry.at(f);
    headers.push_back(e.display_name +
                      (e.mode_oriented ? " MB" : " (1 rep) MB"));
  }
  Table table(headers);

  for (const DatasetSpec& spec : paper_datasets()) {
    const SparseTensor& x = twin(spec.name);
    const double mb = 1.0 / (1024.0 * 1024.0);

    std::vector<std::string> cells{spec.name};
    for (const std::string& f : formats) {
      std::size_t bytes = 0;
      if (registry.at(f).mode_oriented) {
        for (index_t m = 0; m < x.order(); ++m) {
          bytes += registry.create(f, x, m)->storage_bytes();
        }
      } else {
        bytes = registry.create(f, x, 0)->storage_bytes();
      }
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(2)
           << static_cast<double>(bytes) * mb;
      cells.push_back(cell.str());
    }
    table.row_cells(std::move(cells));
  }
  table.print();
  std::cout << "\nExpected shape: HB-CSF below CSF everywhere; FCOO smallest "
               "on singleton-fiber tensors (flick, freebase).\n";
  return 0;
}
