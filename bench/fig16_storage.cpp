// Figure 16: index storage of the mode-oriented formats -- FCOO, CSF and
// HB-CSF each keep N representations for an N-order tensor, so the figure
// sums all modes.  COO (one representation) is shown for reference.
// Expected shape: HB-CSF consistently below CSF (no redundant pointers);
// FCOO below both on tensors with sparse fibers/slices (bit flags instead
// of index words).
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Figure 16 -- index storage (all-mode representations)",
               "megabytes of index data; values excluded, as in the paper");

  Table table({"tensor", "COO (1 rep) MB", "FCOO MB", "CSF MB", "HB-CSF MB",
               "HB-CSF/CSF", "FCOO/CSF"});

  for (const DatasetSpec& spec : paper_datasets()) {
    const SparseTensor& x = twin(spec.name);
    const double mb = 1.0 / (1024.0 * 1024.0);
    const double coo = static_cast<double>(coo_storage(x).bytes) * mb;
    const double fcoo = static_cast<double>(fcoo_storage_all_modes(x)) * mb;
    const double csf = static_cast<double>(csf_storage_all_modes(x)) * mb;
    const double hb = static_cast<double>(hbcsf_storage_all_modes(x)) * mb;
    table.row(spec.name, coo, fcoo, csf, hb, hb / csf, fcoo / csf);
  }
  table.print();
  std::cout << "\nExpected shape: HB-CSF/CSF < 1 everywhere; FCOO smallest "
               "on singleton-fiber tensors (flick, freebase).\n";
  return 0;
}
