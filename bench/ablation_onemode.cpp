// Ablation (§VI-A): SPLATT's ONEMODE vs ALLMODE.  ONEMODE keeps a single
// CSF and answers every mode from it (less memory, slower foreign-mode
// traversals); ALLMODE keeps one CSF per mode ("we use the most efficient
// ALLMODE setting").  Real single-thread wall time on this machine --
// the *relative* cost of foreign-mode traversal is the point.
#include "bench_util.hpp"
#include "kernels/extra_baselines.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Ablation -- SPLATT ONEMODE vs ALLMODE (wall time, 1 thread)",
               "ONEMODE answers all modes from one mode-1-rooted CSF");

  Table table({"tensor", "mode", "ALLMODE (ms)", "ONEMODE (ms)",
               "ONEMODE penalty", "storage ratio"});

  for (const std::string& name :
       {std::string("nell2"), std::string("uber"), std::string("nips")}) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);
    const CsfTensor root0 = build_csf(x, 0);

    std::size_t allmode_bytes = 0;
    for (index_t m = 0; m < x.order(); ++m) {
      allmode_bytes += build_csf(x, m).index_storage_bytes();
    }
    const double ratio = static_cast<double>(allmode_bytes) /
                         static_cast<double>(root0.index_storage_bytes());

    for (index_t mode = 0; mode < x.order(); ++mode) {
      Timer t_all;
      const CsfTensor own = build_csf(x, mode);  // ALLMODE has this prebuilt
      (void)own;
      Timer t_run;
      const DenseMatrix a = mttkrp_csf_cpu(build_csf(x, mode), factors);
      const double allmode_ms = t_run.milliseconds();

      Timer t_one;
      const DenseMatrix b = mttkrp_csf_cpu_onemode(root0, mode, factors);
      const double onemode_ms = t_one.milliseconds();

      // Same semantics, different traversal.
      const double diff = a.max_abs_diff(b);
      BCSF_CHECK(diff < 1e-1, "onemode/allmode mismatch " << diff);

      table.row(name, static_cast<int>(mode), allmode_ms, onemode_ms,
                onemode_ms / allmode_ms, ratio);
    }
  }
  table.print();
  std::cout << "\nExpected shape: ONEMODE near-parity on the root mode, "
               "substantial penalty on foreign modes (the recursion cost "
               "the paper cites), while ALLMODE stores ~N times the "
               "indices.\n";
  return 0;
}
