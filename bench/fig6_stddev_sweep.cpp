// Figure 6: performance rises as the standard deviation of nonzeros per
// fiber falls (warp-level balance improves).  The paper sweeps synthetic
// variants of freebase-music / freebase-sampled in mode 1; we regenerate
// the twins with progressively lighter fiber tails at constant nonzero
// count and run the plain (unsplit) CSF kernel, which is the kernel whose
// warps are exposed to the fiber distribution.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Figure 6 -- GFLOPs vs stddev(nnz/fiber), mode 1",
               "synthetic sweep at constant nnz; plain GPU-CSF kernel");

  const DeviceModel device = DeviceModel::p100();
  Table table({"base", "fiber_alpha", "max fiber len", "stdev nnz/fbr",
               "GFLOPs", "occ %", "sm_eff %"});

  struct SweepPoint {
    double alpha;
    offset_t cap;
  };
  const std::vector<SweepPoint> sweep = {
      {0.3, 65536}, {0.5, 16384}, {0.8, 4096}, {1.2, 1024}, {2.0, 256},
      {3.0, 64},    {4.0, 16},
  };

  for (const std::string& base : {std::string("fr_m"), std::string("fr_s")}) {
    PowerLawConfig cfg = dataset_spec(base).twin;
    cfg.fixed_fiber_len = 0;   // let the sweep control the tail
    cfg.dims.back() = 131072;  // widen the leaf mode so long fibers exist
                               // (the twins' mode-3 is only 166/532 wide)
    for (const SweepPoint& p : sweep) {
      cfg.fiber_alpha = p.alpha;
      cfg.max_fiber_len = p.cap;
      const SparseTensor x = generate_power_law(cfg);
      const auto factors = make_random_factors(x.dims(), kPaperRank, 4242);
      const ModeStats stats = compute_mode_stats(x, 0);
      const CsfTensor csf = build_csf(x, 0);
      const SimReport rep = mttkrp_csf_gpu(csf, factors, device).report;
      table.row(base, p.alpha, std::to_string(p.cap),
                stats.nnz_per_fiber.stddev, rep.gflops,
                rep.achieved_occupancy_pct, rep.sm_efficiency_pct);
    }
  }
  table.print();
  std::cout << "\nExpected shape: within each base tensor, GFLOPs rise "
               "monotonically (modulo noise) as the fiber stddev falls.\n";
  return 0;
}
