// Figure 14: HB-CSF speedup over ParTI's COO GPU kernel (paper average
// ~3x; 4-D rows are n/a because ParTI-GPU does not support order > 3).
#include "speedup_common.hpp"

int main() {
  return bcsf::bench::run_speedup_figure("Figure 14 -- HB-CSF vs ParTI-GPU",
                                         bcsf::bench::gpu_baseline("coo"),
                                         3.0);
}
