// Ablation: thread-block size for the B-CSF kernel.  The paper's examples
// use 512-thread blocks; F-COO is tuned over {32..1024} (§VI-A).  Sweeps
// the block size (warps per block scale with it) and the matching
// slc-split bin capacity.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Ablation -- thread block size for B-CSF (mode 1)",
               "block capacity tracks block size (1 nnz per thread)");

  Table table({"tensor", "threads/block", "GFLOPs", "occ %", "sm_eff %",
               "blocks"});

  for (const std::string& name :
       {std::string("deli"), std::string("nell2"), std::string("fr_m")}) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);
    const CsfTensor csf = build_csf(x, 0);
    for (unsigned threads : {128u, 256u, 512u, 1024u}) {
      DeviceModel device = DeviceModel::p100();
      device.threads_per_block = threads;
      BcsfOptions opts;
      opts.block_nnz_capacity = threads;
      const BcsfTensor b = build_bcsf_from_csf(csf, opts);
      const SimReport rep = mttkrp_bcsf_gpu(b, factors, device).report;
      table.row(name, std::to_string(threads), rep.gflops,
                rep.achieved_occupancy_pct, rep.sm_efficiency_pct,
                std::to_string(rep.num_blocks));
    }
  }
  table.print();
  std::cout << "\nExpected shape: small blocks on big tensors pay dispatch "
               "overhead; oversized blocks lose occupancy granularity -- "
               "a broad optimum around the paper's 512.\n";
  return 0;
}
