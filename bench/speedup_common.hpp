// Shared driver for the speedup figures (11-15): HB-CSF on the simulated
// P100 versus one baseline, per dataset and per mode, with the geometric
// mean the paper quotes ("HB-CSF outperforms SPLATT by 35x on average").
//
// CPU baselines (SPLATT tiled/nontiled, HiCOO) are priced with the
// 28-core Broadwell model; GPU baselines (ParTI-COO, F-COO) run through
// the same simulator as HB-CSF.  ParTI and F-COO do not support
// order > 3 tensors ("None of the existing GPU based frameworks ...
// support four or higher dimensional tensors"), so 4-D rows print n/a --
// the paper's missing bars.
#pragma once

#include "bench_util.hpp"

namespace bcsf::bench {

enum class Baseline {
  kSplattTiled,
  kSplattNontiled,
  kHicoo,
  kPartiGpu,
  kFcooGpu,
};

inline const char* baseline_name(Baseline b) {
  switch (b) {
    case Baseline::kSplattTiled: return "SPLATT-CPU-tiled";
    case Baseline::kSplattNontiled: return "SPLATT-CPU-nontiled";
    case Baseline::kHicoo: return "HiCOO-CPU";
    case Baseline::kPartiGpu: return "ParTI-GPU";
    case Baseline::kFcooGpu: return "FCOO-GPU";
  }
  return "?";
}

/// Seconds for the baseline on (tensor, mode); negative = unsupported.
inline double baseline_seconds(Baseline b, const SparseTensor& x, index_t mode,
                               const std::vector<DenseMatrix>& factors,
                               const DeviceModel& device,
                               const CpuModel& cpu) {
  switch (b) {
    case Baseline::kSplattTiled:
      return estimate_splatt(build_csf(x, mode), kPaperRank, cpu, true).seconds;
    case Baseline::kSplattNontiled:
      return estimate_splatt(build_csf(x, mode), kPaperRank, cpu, false)
          .seconds;
    case Baseline::kHicoo:
      return estimate_hicoo(build_hicoo(x), mode, kPaperRank, cpu).seconds;
    case Baseline::kPartiGpu:
      if (x.order() > 3) return -1.0;
      return mttkrp_coo_gpu(x, mode, factors, device).report.seconds;
    case Baseline::kFcooGpu: {
      if (x.order() > 3) return -1.0;
      const FcooTensor f = build_fcoo(x, mode);
      return mttkrp_fcoo_gpu(f, factors, device).report.seconds;
    }
  }
  return -1.0;
}

inline int run_speedup_figure(const std::string& figure, Baseline b,
                              double paper_average) {
  const DeviceModel device = DeviceModel::p100();
  const CpuModel cpu = CpuModel::broadwell();
  std::ostringstream note;
  note << "speedup = " << baseline_name(b)
       << " time / HB-CSF simulated time; paper average ~" << paper_average
       << "x";
  print_header(figure, note.str());

  Table table({"tensor", "mode", "baseline (ms)", "HB-CSF (ms)", "speedup"});
  std::vector<double> speedups;

  for (const DatasetSpec& spec : paper_datasets()) {
    const SparseTensor& x = twin(spec.name);
    const auto& factors = factors_for(spec.name);
    for (index_t mode = 0; mode < x.order(); ++mode) {
      const double base_s =
          baseline_seconds(b, x, mode, factors, device, cpu);
      if (base_s < 0.0) {
        table.row(spec.name, static_cast<int>(mode), std::string("n/a"),
                  std::string("n/a"),
                  std::string("n/a (no 4-D support)"));
        continue;
      }
      const HbcsfTensor h = build_hbcsf(x, mode);
      const double hb_s =
          mttkrp_hbcsf_gpu(h, factors, device).report.seconds;
      const double speedup = base_s / hb_s;
      speedups.push_back(speedup);
      table.row(spec.name, static_cast<int>(mode), base_s * 1e3, hb_s * 1e3,
                speedup);
    }
  }
  table.print();
  std::cout << "\ngeometric-mean speedup: " << std::fixed
            << std::setprecision(2) << geomean(speedups) << "x  (paper: ~"
            << paper_average << "x)\n";
  return 0;
}

}  // namespace bcsf::bench
