// Shared driver for the speedup figures (11-15): HB-CSF on the simulated
// P100 versus one baseline, per dataset and per mode, with the geometric
// mean the paper quotes ("HB-CSF outperforms SPLATT by 35x on average").
//
// A baseline is a name plus a pricing function -- no per-format switch.
// CPU baselines (SPLATT tiled/nontiled, HiCOO) are priced with the
// 28-core Broadwell model; GPU baselines are whatever the FormatRegistry
// knows, run through the same simulator as HB-CSF.  ParTI and F-COO do
// not support order > 3 tensors ("None of the existing GPU based
// frameworks ... support four or higher dimensional tensors"), so 4-D
// rows print n/a -- the paper's missing bars.
#pragma once

#include <functional>

#include "bench_util.hpp"

namespace bcsf::bench {

struct Baseline {
  std::string name;
  /// Highest tensor order supported; 0 = unlimited.
  index_t max_order = 0;
  std::function<double(const SparseTensor& x, index_t mode,
                       const std::vector<DenseMatrix>& factors,
                       const DeviceModel& device, const CpuModel& cpu)>
      seconds;
};

/// Analytic Broadwell pricing of SPLATT's CSF kernel (DESIGN.md §1).
inline Baseline splatt_baseline(bool tiled) {
  return {tiled ? "SPLATT-CPU-tiled" : "SPLATT-CPU-nontiled", 0,
          [tiled](const SparseTensor& x, index_t mode,
                  const std::vector<DenseMatrix>&, const DeviceModel&,
                  const CpuModel& cpu) {
            return estimate_splatt(build_csf(x, mode), kPaperRank, cpu, tiled)
                .seconds;
          }};
}

/// Analytic Broadwell pricing of the HiCOO CPU kernel.
inline Baseline hicoo_baseline() {
  return {"HiCOO-CPU", 0,
          [](const SparseTensor& x, index_t mode,
             const std::vector<DenseMatrix>&, const DeviceModel&,
             const CpuModel& cpu) {
            return estimate_hicoo(build_hicoo(x), mode, kPaperRank, cpu)
                .seconds;
          }};
}

/// Any GPU format in the FormatRegistry as a simulated baseline.
inline Baseline gpu_baseline(const std::string& format,
                             index_t max_order = 3) {
  const auto& entry = FormatRegistry::instance().at(format);
  return {entry.display_name + "-GPU", max_order,
          [format](const SparseTensor& x, index_t mode,
                   const std::vector<DenseMatrix>& factors,
                   const DeviceModel& device, const CpuModel&) {
            PlanOptions opts;
            opts.device = device;
            return FormatRegistry::instance()
                .create(format, x, mode, opts)
                ->run(factors)
                .report.seconds;
          }};
}

inline int run_speedup_figure(const std::string& figure, const Baseline& b,
                              double paper_average) {
  const DeviceModel device = DeviceModel::p100();
  const CpuModel cpu = CpuModel::broadwell();
  std::ostringstream note;
  note << "speedup = " << b.name
       << " time / HB-CSF simulated time; paper average ~" << paper_average
       << "x";
  print_header(figure, note.str());

  Table table({"tensor", "mode", "baseline (ms)", "HB-CSF (ms)", "speedup"});
  std::vector<double> speedups;

  PlanOptions hb_opts;
  hb_opts.device = device;
  for (const DatasetSpec& spec : paper_datasets()) {
    const SparseTensor& x = twin(spec.name);
    const auto& factors = factors_for(spec.name);
    for (index_t mode = 0; mode < x.order(); ++mode) {
      if (b.max_order != 0 && x.order() > b.max_order) {
        table.row(spec.name, static_cast<int>(mode), std::string("n/a"),
                  std::string("n/a"),
                  std::string("n/a (no 4-D support)"));
        continue;
      }
      const double base_s = b.seconds(x, mode, factors, device, cpu);
      const double hb_s = FormatRegistry::instance()
                              .create("hbcsf", x, mode, hb_opts)
                              ->run(factors)
                              .report.seconds;
      const double speedup = base_s / hb_s;
      speedups.push_back(speedup);
      table.row(spec.name, static_cast<int>(mode), base_s * 1e3, hb_s * 1e3,
                speedup);
    }
  }
  table.print();
  std::cout << "\ngeometric-mean speedup: " << std::fixed
            << std::setprecision(2) << geomean(speedups) << "x  (paper: ~"
            << paper_average << "x)\n";
  return 0;
}

}  // namespace bcsf::bench
