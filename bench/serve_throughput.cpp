// Serving-layer throughput: requests/sec through TensorOpService as the
// worker pool grows (DESIGN.md §5-§8).  Each run fires a fixed request
// load (round-robin over modes, shared factor set) at a fresh service and
// times admission-to-drain; the table also reports per-request latency
// percentiles and how much of the traffic was served before vs after the
// async B-CSF upgrade, so the serve-then-upgrade amortization story is
// visible in one row.
//
// --shards=K,K,... runs the whole sweep once per shard count
// (ServeOptions::shards, DESIGN.md §8).  Each row additionally records
// TIME-TO-STRUCTURED -- the wall time until every shard of mode 0 swapped
// in its structured plan, polled between waves -- and the per-shard
// build seconds, so the parallel-shard-build win (K builds of nnz/K
// overlapping on the pool vs one monolithic sort) is measurable:
// compare the time_to_structured_ms of --shards=4 against --shards=1.
//
// --op-mix=W:W:W sets integer weights for the mttkrp:ttv:fit traffic mix
// (default 1:0:0 = the MTTKRP-only workload of earlier baselines); ops
// are interleaved deterministically in that ratio and per-op p50/p99
// latencies land in the table and the JSON record.
//
// Traffic arrives in waves (--batch requests per wave, each drained
// before the next) rather than one burst, so the background upgrade task
// gets pool time mid-run exactly as it would under continuous load.
// With --update-every=N an additive COO update batch is applied every N
// requests, exercising the snapshot/delta/compaction path of §6 (routed
// per shard under §8: only the shards a batch touches version-bump or
// compact).
//
// Each row also reports the serving layer's output-combining overhead
// (DESIGN.md §8): mean per-request fan-out latency (fanout_ms, submit to
// last shard finishing) and reduce latency (reduce_ms, combining shard
// results into the response), plus which combine path dominated --
// "disjoint" when partition-mode requests skipped the K-way reduce,
// "merge" when only the double-reduce ran, "single" for monolithic
// tensors.  Compare shards=4 vs shards=1 at equal workers: the disjoint
// path plus batch-amortized fan-out is what makes sharding pay on
// req/s and p99, not just on time_to_structured.
//
// Record/replay (DESIGN.md §9): --record=PATH writes the FIRST
// (shards, workers) run's traffic -- register, updates, every query --
// to a tensord trace file (trace/TraceRecorder), so the CI replay gate
// and tools/trace_replay can re-serve exactly this workload.  --trace=
// PATH inverts it: instead of the synthetic wave workload, the run
// replays a recorded trace's events sequentially against each
// (shards, workers) service and reports the same table -- a recorded
// production workload becomes a repeatable benchmark input.
//
// Multi-tenant fleet mode (DESIGN.md §10): --tenants=N registers N
// tensors of harmonically decreasing nnz (tenant 0 largest) and drives a
// Zipf(--zipf=S) request stream across them -- hot tenants are also the
// big ones, so structured-plan storage concentrates where the traffic
// is.  Every (shards, workers) config runs TWICE over the identical
// request sequence: once unbounded (to measure the resident peak), once
// with --budget (either absolute bytes or "NN%" of that measured peak).
// Tenant workloads use EXACT-GRID values (tensor values in {1..3} step
// 0.5, factors multiples of 0.25 in [-1, 1]), which keeps every kernel
// sum exactly representable -- so the budgeted pass, with its
// evictions and COO fallbacks, must produce BITWISE the same responses
// as the unbounded pass (the budget_match column / CI gate).  Rows add
// resident-bytes accounting, the structured-plan hit rate, and the
// eviction count.  Tenant mode is query-only and excludes
// --record/--trace.
//
// --json <path> additionally writes the machine-readable result record
// described by bench/schema/BENCH_serve.schema.json (the perf-trajectory
// format, BENCH_serve/v6; BENCH_serve.json at the repo root is a
// committed baseline).
//
//   ./serve_throughput [--requests=N] [--batch=N] [--nnz=N] [--rank=R]
//                      [--threads=1,2,4,8] [--shards=1,4] [--threshold=N]
//                      [--format=bcsf] [--op-mix=4:2:1] [--update-every=N]
//                      [--update-nnz=N] [--json=path] [--record=path]
//                      [--trace=path] [--tenants=N] [--zipf=S]
//                      [--budget=BYTES|NN%]
#include "bench_util.hpp"
#include "net/convert.hpp"
#include "net/wire.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

#include <array>
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <unordered_set>
#include <vector>

namespace {

/// Percentile over a copy (nearest-rank on the sorted sample).
double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct OpStats {
  int count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct ShardTiming {
  double build_s = 0.0;  ///< build work in the shard's final generation
  bool upgraded = false; ///< structured delegate live for mode 0 at drain
};

struct RunRow {
  unsigned shards = 1;
  unsigned workers = 0;
  double req_per_s = 0.0;
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Wall ms until EVERY shard of mode 0 served structured (polled per
  /// wave; -1 = the upgrade never landed during the run).
  double time_to_structured_ms = -1.0;
  int pre_upgrade = 0;
  int post_upgrade = 0;
  /// Mean per-request fan-out / reduce overhead (ServeResponse timings).
  double fanout_ms = 0.0;
  double reduce_ms = 0.0;
  /// Strongest combine path observed: "disjoint" > "merge" > "single".
  std::string reduce_path = "single";
  std::string final_format;
  std::uint64_t compactions = 0;
  std::uint64_t final_version = 0;
  /// Queries refused by admission control.  Always 0 here: the bench
  /// drives the service in-process, and admission lives in the tensord
  /// front-end -- the column exists so v5 rows from socket-driven runs
  /// stay comparable.
  std::uint64_t rejected = 0;
  int completed = 0;  ///< requests actually served (trace runs vary)
  // --- storage-budget accounting (BENCH_serve/v6, DESIGN.md §10) ---
  int tenants = 0;                        ///< 0 = single-tenant mode
  std::uint64_t budget_bytes = 0;         ///< 0 = unbounded pass
  std::uint64_t resident_peak_bytes = 0;  ///< peak structured-plan bytes
  std::uint64_t resident_final_bytes = 0; ///< plan + delta bytes at drain
  /// Fraction of queries served by a structured plan (vs COO fallback).
  double plan_hit_rate = 0.0;
  std::uint64_t evictions = 0;
  /// True iff resident bytes never exceeded the budget at any wave
  /// boundary (vacuously true for unbounded rows).
  bool under_budget = true;
  /// True iff every response of the budgeted pass was BITWISE equal to
  /// the unbounded pass (vacuously true for unbounded rows).
  bool budget_match = true;
  // --- planning-latency accounting (BENCH_serve/v7, DESIGN.md §12) ---
  /// Total wall ms the service spent resolving upgrade policy across the
  /// run, and the number of decisions that covers.  Sketch-backed
  /// resolution (ServeOptions::sketch_policy, the default) reads O(S)
  /// sketch state per decision, so this column stays flat as nnz grows;
  /// the exact path rescans O(nnz) per decision.
  double policy_ms = 0.0;
  std::uint64_t policy_resolutions = 0;
  std::vector<ShardTiming> shard_timings;
  OpStats ops[3];  // indexed by OpKind
};

/// Parses "W:W:W" integer weights for mttkrp:ttv:fit; exits with a
/// usage message on malformed input instead of throwing out of main.
std::array<int, 3> parse_op_mix(const std::string& spec) {
  std::array<int, 3> weights = {1, 0, 0};
  std::stringstream ss(spec);
  std::string tok;
  for (int i = 0; i < 3 && std::getline(ss, tok, ':'); ++i) {
    std::size_t consumed = 0;
    int value = 0;
    try {
      value = std::stoi(tok, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != tok.size() || value < 0) {
      std::cerr << "bad --op-mix '" << spec
                << "': expected nonnegative integer weights W:W:W "
                   "(mttkrp:ttv:fit)\n";
      std::exit(1);
    }
    weights[static_cast<std::size_t>(i)] = value;
  }
  if (weights[0] + weights[1] + weights[2] == 0) weights[0] = 1;
  return weights;
}

/// Deterministic interleaving: request i gets the op of slot (i mod
/// total-weight) in the mttkrp/ttv/fit weight partition.
bcsf::OpKind op_for_request(int issued, const std::array<int, 3>& weights) {
  const int total = weights[0] + weights[1] + weights[2];
  const int slot = issued % total;
  if (slot < weights[0]) return bcsf::OpKind::kMttkrp;
  if (slot < weights[0] + weights[1]) return bcsf::OpKind::kTtv;
  return bcsf::OpKind::kFit;
}

std::vector<unsigned> parse_unsigned_list(const std::string& spec) {
  std::vector<unsigned> out;
  std::stringstream ss(spec);
  for (std::string tok; std::getline(ss, tok, ',');) {
    out.push_back(static_cast<unsigned>(std::stoul(tok)));
  }
  return out;
}

/// --budget spec: "NN%" = fraction of the measured unbounded peak,
/// otherwise absolute bytes with an optional K/M/G binary suffix.
struct BudgetSpec {
  double fraction = -1.0;  ///< >= 0 when the spec was a percentage
  std::size_t bytes = 0;
};

BudgetSpec parse_budget(const std::string& spec) {
  BudgetSpec out;
  if (spec.empty()) return out;
  try {
    std::size_t end = 0;
    const unsigned long long value = std::stoull(spec, &end);
    if (end < spec.size() && spec[end] == '%' && end + 1 == spec.size()) {
      out.fraction = static_cast<double>(value) / 100.0;
      return out;
    }
    std::size_t shift = 0;
    if (end < spec.size()) {
      if (end + 1 != spec.size()) throw std::invalid_argument(spec);
      switch (spec[end]) {
        case 'k': case 'K': shift = 10; break;
        case 'm': case 'M': shift = 20; break;
        case 'g': case 'G': shift = 30; break;
        default: throw std::invalid_argument(spec);
      }
    }
    out.bytes = static_cast<std::size_t>(value) << shift;
    return out;
  } catch (const std::exception&) {
    std::cerr << "bad --budget '" << spec
              << "': expected BYTES[K|M|G] or NN%\n";
    std::exit(1);
  }
}

/// FNV-1a over a response's numeric payload -- the bitwise-equality
/// probe the budgeted pass is compared with.
std::uint64_t hash_response(const bcsf::ServeResponse& response) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  const auto data = response.output.data();
  mix(data.data(), data.size() * sizeof(bcsf::value_t));
  mix(&response.scalar, sizeof(response.scalar));
  return h;
}

std::string tenant_name(int t) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "t%03d", t);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcsf;
  using namespace bcsf::bench;
  const CliParser cli(argc, argv);
  const int requests = static_cast<int>(cli.get_int("requests", 512));
  const int batch_size = static_cast<int>(cli.get_int("batch", 64));
  const offset_t nnz = static_cast<offset_t>(cli.get_int("nnz", 200000));
  const rank_t rank = static_cast<rank_t>(cli.get_int("rank", kPaperRank));
  const double threshold = cli.get_double("threshold", requests / 4.0);
  const std::string upgrade = cli.get_string("format", "bcsf");
  const std::string op_mix = cli.get_string("op-mix", "1:0:0");
  const std::array<int, 3> op_weights = parse_op_mix(op_mix);
  const int update_every = static_cast<int>(cli.get_int("update-every", 0));
  const offset_t update_nnz =
      static_cast<offset_t>(cli.get_int("update-nnz", 2000));
  const std::string shard_spec = cli.get_string("shards", "1");
  const std::string json_path = cli.get_string("json", "");
  const std::string record_path = cli.get_string("record", "");
  const std::string trace_path = cli.get_string("trace", "");
  const int tenants = static_cast<int>(cli.get_int("tenants", 0));
  const double zipf_s = cli.get_double("zipf", 1.1);
  const std::string budget_spec = cli.get_string("budget", "50%");
  if (!record_path.empty() && !trace_path.empty()) {
    std::cerr << "--record and --trace are mutually exclusive\n";
    return 1;
  }
  if (tenants > 0 && (!record_path.empty() || !trace_path.empty())) {
    std::cerr << "--tenants excludes --record/--trace\n";
    return 1;
  }

  const std::vector<unsigned> thread_counts =
      parse_unsigned_list(cli.get_string("threads", "1,2,4,8"));
  const std::vector<unsigned> shard_counts = parse_unsigned_list(shard_spec);

  print_header("Serving throughput -- requests/sec vs worker count",
               "async COO -> " + upgrade + " upgrade at " +
                   std::to_string(static_cast<long>(threshold)) + " calls" +
                   ", op mix mttkrp:ttv:fit = " + op_mix + ", shards = " +
                   shard_spec +
                   (update_every > 0
                        ? ", update every " + std::to_string(update_every) +
                              " requests"
                        : ""));

  PowerLawConfig config;
  config.dims = {400, 600, 800};
  config.target_nnz = nnz;
  config.slice_alpha = 0.8;
  config.fiber_alpha = 0.8;
  config.max_fiber_len = 64;
  config.seed = 97;
  const SparseTensor base = generate_power_law(config);
  const auto factors = std::make_shared<const std::vector<DenseMatrix>>(
      make_random_factors(base.dims(), rank, 4242));
  // TTV requests contract with rank-1 vectors; FIT reuses the factors.
  const auto vectors = std::make_shared<const std::vector<DenseMatrix>>(
      make_random_factors(base.dims(), 1, 2424));
  std::cout << "tensor: " << base.shape_string() << ", nnz = " << base.nnz()
            << ", rank = " << rank << ", requests = " << requests << "\n\n";

  // The recorder captures the FIRST (shards, workers) run only -- one
  // clean replayable workload, not a concatenation of sweeps that would
  // re-register the same tensor.
  std::unique_ptr<trace::TraceRecorder> recorder;
  if (!record_path.empty()) {
    recorder = std::make_unique<trace::TraceRecorder>(record_path);
  }
  bool recording = recorder != nullptr;
  std::uint64_t trace_id = 0;

  std::mt19937 update_rng(4711);
  std::vector<RunRow> rows;

  if (tenants > 0) {
    // ---- multi-tenant fleet mode (DESIGN.md §10) ----
    const BudgetSpec budget = parse_budget(budget_spec);
    // Exact-grid tenant fleet: identical dims (one shared factor set),
    // harmonically decreasing nnz -- tenant 0 is both the biggest and,
    // under Zipf, the hottest, so structured storage concentrates where
    // the traffic is.
    const std::vector<index_t> tdims = {96, 128, 72};
    double hsum = 0.0;
    for (int t = 0; t < tenants; ++t) hsum += 1.0 / (t + 1);
    std::vector<SparseTensor> fleet;
    fleet.reserve(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      const auto want = static_cast<offset_t>(std::max(
          256.0, static_cast<double>(nnz) / ((t + 1) * hsum)));
      SparseTensor tensor(tdims);
      std::mt19937 trng(1000 + static_cast<unsigned>(t));
      std::unordered_set<std::uint64_t> seen;
      std::vector<index_t> coords(tdims.size());
      while (tensor.nnz() < want) {
        std::uint64_t key = 0;
        for (std::size_t m = 0; m < tdims.size(); ++m) {
          coords[m] = static_cast<index_t>(trng() % tdims[m]);
          key = key * tdims[m] + coords[m];
        }
        // Exact grid needs unique cells: a structured build may coalesce
        // duplicate coordinates where the COO sweep would sum them.
        if (!seen.insert(key).second) continue;
        tensor.push_back(coords,
                         1.0F + 0.5F * static_cast<value_t>(trng() % 5));
      }
      fleet.push_back(std::move(tensor));
    }
    // Shared exact-grid factors: multiples of 0.25 in [-1, 1].  Every
    // kernel term is then a multiple of 2^-5 with magnitude <= 3, and
    // every partial sum stays far inside float's exactly-representable
    // range -- bitwise equality becomes order-independent, which is what
    // lets the budgeted pass (evictions, COO fallbacks, different
    // thread interleavings) be compared byte for byte.
    std::vector<DenseMatrix> tfactor_vec;
    {
      std::mt19937 frng(77);
      for (std::size_t m = 0; m < tdims.size(); ++m) {
        DenseMatrix f(tdims[m], rank);
        for (value_t& v : f.data()) {
          v = 0.25F * (static_cast<value_t>(static_cast<int>(frng() % 9)) -
                       4.0F);
        }
        tfactor_vec.push_back(std::move(f));
      }
    }
    const auto tfactors = std::make_shared<const std::vector<DenseMatrix>>(
        std::move(tfactor_vec));
    std::cout << "tenants: " << tenants << ", zipf s = " << zipf_s
              << ", budget = " << budget_spec << ", per-tenant dims "
              << fleet[0].shape_string() << ", fleet nnz = " << [&] {
                   offset_t total = 0;
                   for (const auto& f : fleet) total += f.nnz();
                   return total;
                 }() << "\n\n";

    // One measured pass: the identical Zipf request sequence (fixed
    // seed) against a fresh service with the given budget.
    auto run_pass = [&](unsigned shards, unsigned workers,
                        std::size_t budget_bytes,
                        std::vector<std::uint64_t>& hashes) {
      ServeOptions opts;
      opts.workers = workers;
      opts.shards = shards;
      opts.upgrade_format = upgrade;
      opts.upgrade_threshold = threshold;
      opts.storage_budget_bytes = budget_bytes;
      MttkrpService service(opts);
      for (int t = 0; t < tenants; ++t) {
        service.register_tensor(tenant_name(t),
                                share_tensor(SparseTensor(fleet[
                                    static_cast<std::size_t>(t)])));
      }
      RunRow row;
      row.shards = shards;
      row.workers = workers;
      row.tenants = tenants;
      row.budget_bytes = budget_bytes;
      Rng zrng(20260807);
      ZipfSampler zipf(static_cast<index_t>(tenants), zipf_s, zrng);
      std::vector<double> latencies_ms;
      latencies_ms.reserve(static_cast<std::size_t>(requests));
      using clock = std::chrono::steady_clock;
      Timer timer;
      for (int issued = 0; issued < requests;) {
        std::vector<ServeRequest> batch;
        batch.reserve(static_cast<std::size_t>(batch_size));
        for (int i = 0; i < batch_size && issued < requests; ++i, ++issued) {
          ServeRequest request;
          request.tensor = tenant_name(static_cast<int>(zipf.sample()));
          request.mode = static_cast<index_t>(issued % tdims.size());
          request.op = OpKind::kMttkrp;
          request.factors = tfactors;
          batch.push_back(std::move(request));
        }
        const clock::time_point submitted = clock::now();
        auto futures = service.submit_batch(std::move(batch));
        std::vector<std::uint64_t> wave_hashes(futures.size(), 0);
        std::vector<bool> done(futures.size(), false);
        std::size_t remaining = futures.size();
        while (remaining > 0) {
          for (std::size_t i = 0; i < futures.size(); ++i) {
            if (done[i] ||
                futures[i].wait_for(std::chrono::microseconds(50)) !=
                    std::future_status::ready) {
              continue;
            }
            const double latency = std::chrono::duration<double, std::milli>(
                                       clock::now() - submitted)
                                       .count();
            const ServeResponse response = futures[i].get();
            done[i] = true;
            --remaining;
            (response.upgraded ? row.post_upgrade : row.pre_upgrade)++;
            latencies_ms.push_back(latency);
            wave_hashes[i] = hash_response(response);
          }
        }
        // Hashes land in ISSUE order regardless of completion order, so
        // two passes over the same sequence are directly comparable.
        hashes.insert(hashes.end(), wave_hashes.begin(), wave_hashes.end());
        // The budget invariant, sampled at every wave boundary: the
        // service must never hold more resident bytes than the budget.
        if (budget_bytes > 0 && service.resident_bytes() > budget_bytes) {
          row.under_budget = false;
        }
      }
      service.wait_idle();
      if (budget_bytes > 0 && service.resident_bytes() > budget_bytes) {
        row.under_budget = false;
      }
      const double seconds = timer.seconds();
      row.completed = static_cast<int>(latencies_ms.size());
      row.req_per_s = row.completed / seconds;
      row.wall_ms = seconds * 1e3;
      row.p50_ms = percentile(latencies_ms, 50.0);
      row.p99_ms = percentile(latencies_ms, 99.0);
      row.ops[0].count = row.completed;
      row.ops[0].p50_ms = row.p50_ms;
      row.ops[0].p99_ms = row.p99_ms;
      row.resident_peak_bytes = service.peak_plan_resident_bytes();
      row.resident_final_bytes = service.resident_bytes();
      row.evictions = service.eviction_count();
      row.policy_ms = service.policy_seconds() * 1e3;
      row.policy_resolutions = service.policy_resolution_count();
      std::uint64_t structured = 0;
      std::uint64_t coo = 0;
      for (const auto& ts : service.tenant_stats()) {
        structured += ts.structured_served;
        coo += ts.coo_served;
      }
      row.plan_hit_rate =
          structured + coo == 0
              ? 0.0
              : static_cast<double>(structured) /
                    static_cast<double>(structured + coo);
      row.final_format = service.current_format(tenant_name(0), 0);
      row.final_version = service.snapshot_version(tenant_name(0));
      return row;
    };

    Table ttable({"shards", "workers", "budget (KB)", "req/s", "p50 (ms)",
                  "p99 (ms)", "peak res (KB)", "final res (KB)", "hit rate",
                  "evictions", "under", "match"});
    const auto kb = [](std::uint64_t b) {
      return static_cast<long>(b / 1024);
    };
    for (unsigned shards : shard_counts) {
      for (unsigned workers : thread_counts) {
        std::vector<std::uint64_t> unbounded_hashes;
        std::vector<std::uint64_t> budgeted_hashes;
        RunRow unbounded = run_pass(shards, workers, 0, unbounded_hashes);
        const std::size_t budget_bytes =
            budget.fraction >= 0.0
                ? std::max<std::size_t>(
                      1, static_cast<std::size_t>(
                             budget.fraction *
                             static_cast<double>(
                                 unbounded.resident_peak_bytes)))
                : budget.bytes;
        RunRow budgeted =
            run_pass(shards, workers, budget_bytes, budgeted_hashes);
        budgeted.budget_match = budgeted_hashes == unbounded_hashes;
        for (const RunRow* r : {&unbounded, &budgeted}) {
          ttable.row(r->shards, r->workers, kb(r->budget_bytes),
                     static_cast<long>(r->req_per_s), r->p50_ms, r->p99_ms,
                     kb(r->resident_peak_bytes),
                     kb(r->resident_final_bytes), r->plan_hit_rate,
                     static_cast<long>(r->evictions),
                     r->under_budget ? "yes" : "NO",
                     r->budget_match ? "yes" : "NO");
        }
        rows.push_back(unbounded);
        rows.push_back(budgeted);
      }
    }
    ttable.print();
  } else {
  Table table({"shards", "workers", "req/s", "wall (ms)", "p50 (ms)",
               "p99 (ms)", "fanout (ms)", "reduce (ms)", "path",
               "t->struct (ms)", "pre-upgrade", "post-upgrade",
               "final format", "compactions", "policy (ms)"});
  for (unsigned shards : shard_counts) {
    for (unsigned workers : thread_counts) {
      ServeOptions opts;
      opts.workers = workers;
      opts.shards = shards;
      opts.upgrade_format = upgrade;
      opts.upgrade_threshold = threshold;
      MttkrpService service(opts);
      /// Tensor the row's lifecycle stats key on: "bench" for synthetic
      /// runs, the trace's first registered tensor for --trace runs.
      std::string stat_tensor = "bench";
      if (trace_path.empty()) {
        service.register_tensor("bench", share_tensor(SparseTensor(base)));
        if (recording) {
          net::RegisterMsg msg;
          msg.id = ++trace_id;
          msg.name = "bench";
          msg.tensor = base;
          recorder->record(net::MsgType::kRegister,
                           net::encode_register(msg));
        }
      } else {
        stat_tensor.clear();  // learned from the trace's first register
      }

      using clock = std::chrono::steady_clock;
      Timer timer;
      RunRow row;
      row.shards = shards;
      row.workers = workers;
      std::vector<double> latencies_ms;
      latencies_ms.reserve(static_cast<std::size_t>(requests));
      std::vector<double> op_latencies_ms[3];

      // Shared per-response accounting for both workload sources.
      auto account = [&](const ServeResponse& response, double latency) {
        (response.upgraded ? row.post_upgrade : row.pre_upgrade)++;
        latencies_ms.push_back(latency);
        op_latencies_ms[static_cast<int>(response.op)].push_back(latency);
        row.fanout_ms += response.fanout_ms;
        row.reduce_ms += response.reduce_ms;
        if (response.reduce_path == "disjoint") {
          row.reduce_path = "disjoint";
        } else if (response.reduce_path == "merge" &&
                   row.reduce_path != "disjoint") {
          row.reduce_path = "merge";
        }
      };

      if (!trace_path.empty()) {
        // Trace-driven run: the recorded workload replayed sequentially
        // (each query drained before the next, like tools/trace_replay
        // but timed) against THIS row's service configuration.
        trace::TraceReader reader(trace_path);
        net::Frame frame;
        while (reader.next(frame)) {
          switch (frame.type) {
            case net::MsgType::kRegister: {
              net::RegisterMsg msg = net::decode_register(frame.payload);
              if (stat_tensor.empty()) stat_tensor = msg.name;
              service.register_tensor(msg.name,
                                      share_tensor(std::move(msg.tensor)));
              break;
            }
            case net::MsgType::kUpdate: {
              net::UpdateMsg msg = net::decode_update(frame.payload);
              service.apply_updates(msg.name, std::move(msg.updates));
              break;
            }
            case net::MsgType::kQuery: {
              net::QueryMsg msg = net::decode_query(frame.payload);
              const clock::time_point submitted = clock::now();
              const ServeResponse response =
                  service.submit(net::to_request(std::move(msg))).get();
              account(response, std::chrono::duration<double, std::milli>(
                                    clock::now() - submitted)
                                    .count());
              if (row.time_to_structured_ms < 0 && !stat_tensor.empty() &&
                  service.upgraded(stat_tensor, 0)) {
                row.time_to_structured_ms = timer.seconds() * 1e3;
              }
              break;
            }
            default:
              break;  // recorded responses / pings / shutdowns
          }
        }
      } else {
      for (int issued = 0; issued < requests;) {
        std::vector<ServeRequest> batch;
        batch.reserve(batch_size);
        for (int i = 0; i < batch_size && issued < requests; ++i, ++issued) {
          if (update_every > 0 && issued > 0 && issued % update_every == 0) {
            SparseTensor updates(base.dims());
            std::vector<index_t> coords(base.dims().size());
            for (offset_t z = 0; z < update_nnz; ++z) {
              for (std::size_t m = 0; m < coords.size(); ++m) {
                coords[m] = static_cast<index_t>(update_rng() % base.dims()[m]);
              }
              updates.push_back(coords, 1.0F);
            }
            if (recording) {
              net::UpdateMsg msg;
              msg.id = ++trace_id;
              msg.name = "bench";
              msg.updates = updates;  // copy: the batch moves away below
              recorder->record(net::MsgType::kUpdate,
                               net::encode_update(msg));
            }
            service.apply_updates("bench", std::move(updates));
          }
          ServeRequest request;
          request.tensor = "bench";
          request.mode = static_cast<index_t>(issued % base.order());
          request.op = op_for_request(issued, op_weights);
          request.factors = request.op == OpKind::kTtv ? vectors : factors;
          if (recording) {
            net::QueryMsg msg;
            msg.id = ++trace_id;
            msg.tensor = "bench";
            msg.mode = request.mode;
            msg.op = request.op;
            msg.factors = *request.factors;
            recorder->record(net::MsgType::kQuery, net::encode_query(msg));
          }
          batch.push_back(std::move(request));
        }
        const clock::time_point submitted = clock::now();
        // Drain by polling ALL outstanding futures instead of get()-ing in
        // submission order: each request's latency is stamped when ITS
        // future becomes ready, so the per-op percentiles measure op cost
        // rather than the request's slot position within the wave.
        auto futures = service.submit_batch(std::move(batch));
        std::vector<bool> done(futures.size(), false);
        std::size_t remaining = futures.size();
        while (remaining > 0) {
          for (std::size_t i = 0; i < futures.size(); ++i) {
            if (done[i] || futures[i].wait_for(std::chrono::microseconds(50)) !=
                               std::future_status::ready) {
              continue;
            }
            const double latency = std::chrono::duration<double, std::milli>(
                                       clock::now() - submitted)
                                       .count();
            const ServeResponse response = futures[i].get();
            done[i] = true;
            --remaining;
            account(response, latency);
          }
        }
        // Time-to-structured: first wave boundary where EVERY shard of
        // mode 0 serves its structured delegate.  With K shards the K
        // builds of nnz/K overlap on the pool, so this lands earlier
        // than one monolithic build -- the §8 headline.
        if (row.time_to_structured_ms < 0 && service.upgraded("bench", 0)) {
          row.time_to_structured_ms = timer.seconds() * 1e3;
        }
      }
      }  // synthetic-vs-trace workload branch
      service.wait_idle();
      if (row.time_to_structured_ms < 0 && !stat_tensor.empty() &&
          service.upgraded(stat_tensor, 0)) {
        row.time_to_structured_ms = timer.seconds() * 1e3;
      }
      const double seconds = timer.seconds();

      row.completed = static_cast<int>(latencies_ms.size());
      const int served = std::max(row.completed, 1);
      row.req_per_s = row.completed / seconds;
      row.wall_ms = seconds * 1e3;
      row.fanout_ms /= served;
      row.reduce_ms /= served;
      row.p50_ms = percentile(latencies_ms, 50.0);
      row.p99_ms = percentile(latencies_ms, 99.0);
      if (!stat_tensor.empty()) {
        row.final_format = service.current_format(stat_tensor, 0);
        row.compactions = service.compaction_count(stat_tensor);
        row.final_version = service.snapshot_version(stat_tensor);
        for (const auto& status : service.shard_status(stat_tensor, 0)) {
          row.shard_timings.push_back(
              ShardTiming{status.build_seconds, status.upgraded});
        }
      }
      // v6 storage accounting -- meaningful even without a budget (the
      // unbounded columns of the single-tenant rows).
      row.resident_peak_bytes = service.peak_plan_resident_bytes();
      row.resident_final_bytes = service.resident_bytes();
      row.evictions = service.eviction_count();
      row.policy_ms = service.policy_seconds() * 1e3;
      row.policy_resolutions = service.policy_resolution_count();
      {
        std::uint64_t structured = 0;
        std::uint64_t coo = 0;
        for (const auto& ts : service.tenant_stats()) {
          structured += ts.structured_served;
          coo += ts.coo_served;
        }
        row.plan_hit_rate =
            structured + coo == 0
                ? 0.0
                : static_cast<double>(structured) /
                      static_cast<double>(structured + coo);
      }
      recording = false;  // --record captures the first run only
      for (int op = 0; op < 3; ++op) {
        row.ops[op].count = static_cast<int>(op_latencies_ms[op].size());
        row.ops[op].p50_ms = percentile(op_latencies_ms[op], 50.0);
        row.ops[op].p99_ms = percentile(op_latencies_ms[op], 99.0);
      }
      table.row(row.shards, row.workers, static_cast<long>(row.req_per_s),
                row.wall_ms, row.p50_ms, row.p99_ms, row.fanout_ms,
                row.reduce_ms, row.reduce_path, row.time_to_structured_ms,
                row.pre_upgrade, row.post_upgrade, row.final_format,
                static_cast<long>(row.compactions), row.policy_ms);
      rows.push_back(row);
    }
  }
  table.print();

  if (op_weights[1] + op_weights[2] > 0) {
    std::cout << "\nper-op latency (count / p50 ms / p99 ms):\n";
    for (const RunRow& r : rows) {
      std::cout << "  shards=" << r.shards << " workers=" << r.workers;
      for (OpKind op : kAllOps) {
        const OpStats& s = r.ops[static_cast<int>(op)];
        std::cout << "  " << op_name(op) << " " << s.count << " / " << s.p50_ms
                  << " / " << s.p99_ms;
      }
      std::cout << "\n";
    }
  }
  }  // tenant-vs-single-tenant mode branch

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"schema\": \"BENCH_serve/v7\",\n"
        << "  \"bench\": \"serve_throughput\",\n"
        << "  \"config\": {\n"
        << "    \"requests\": " << requests << ",\n"
        << "    \"batch\": " << batch_size << ",\n"
        << "    \"nnz\": " << base.nnz() << ",\n"
        << "    \"rank\": " << rank << ",\n"
        << "    \"upgrade_format\": \"" << upgrade << "\",\n"
        << "    \"upgrade_threshold\": " << threshold << ",\n"
        << "    \"op_mix\": \"" << op_mix << "\",\n"
        << "    \"shards\": \"" << shard_spec << "\",\n"
        << "    \"update_every\": " << update_every << ",\n"
        << "    \"update_nnz\": " << update_nnz << ",\n"
        << "    \"tenants\": " << tenants << ",\n"
        << "    \"zipf\": " << zipf_s << ",\n"
        << "    \"budget\": \"" << (tenants > 0 ? budget_spec : "") << "\",\n"
        << "    \"trace\": \""
        << (!record_path.empty() ? record_path : trace_path) << "\"\n"
        << "  },\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const RunRow& r = rows[i];
      out << "    {\"shards\": " << r.shards << ", \"workers\": " << r.workers
          << ", \"req_per_s\": " << r.req_per_s
          << ", \"wall_ms\": " << r.wall_ms << ", \"p50_ms\": " << r.p50_ms
          << ", \"p99_ms\": " << r.p99_ms
          << ", \"fanout_ms\": " << r.fanout_ms
          << ", \"reduce_ms\": " << r.reduce_ms
          << ", \"reduce_path\": \"" << r.reduce_path << "\""
          << ", \"time_to_structured_ms\": " << r.time_to_structured_ms
          << ", \"pre_upgrade\": " << r.pre_upgrade
          << ", \"post_upgrade\": " << r.post_upgrade
          << ", \"rejected\": " << r.rejected
          << ", \"tenants\": " << r.tenants
          << ", \"budget_bytes\": " << r.budget_bytes
          << ", \"resident_peak_bytes\": " << r.resident_peak_bytes
          << ", \"resident_final_bytes\": " << r.resident_final_bytes
          << ", \"plan_hit_rate\": " << r.plan_hit_rate
          << ", \"evictions\": " << r.evictions
          << ", \"policy_ms\": " << r.policy_ms
          << ", \"policy_resolutions\": " << r.policy_resolutions
          << ", \"under_budget\": " << (r.under_budget ? "true" : "false")
          << ", \"budget_match\": " << (r.budget_match ? "true" : "false")
          << ", \"final_format\": \"" << r.final_format << "\""
          << ", \"compactions\": " << r.compactions
          << ", \"final_version\": " << r.final_version
          << ", \"shard_builds\": [";
      for (std::size_t s = 0; s < r.shard_timings.size(); ++s) {
        out << (s == 0 ? "" : ", ") << "{\"build_s\": "
            << r.shard_timings[s].build_s << ", \"upgraded\": "
            << (r.shard_timings[s].upgraded ? "true" : "false") << "}";
      }
      out << "], \"ops\": {";
      for (OpKind op : kAllOps) {
        const OpStats& s = r.ops[static_cast<int>(op)];
        out << (op == OpKind::kMttkrp ? "" : ", ") << "\"" << op_name(op)
            << "\": {\"count\": " << s.count << ", \"p50_ms\": " << s.p50_ms
            << ", \"p99_ms\": " << s.p99_ms << "}";
      }
      out << "}}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
