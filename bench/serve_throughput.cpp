// Serving-layer throughput: requests/sec through MttkrpService as the
// worker pool grows (DESIGN.md §5).  Each run fires a fixed request load
// (round-robin over modes, shared factor set) at a fresh service and
// times admission-to-drain; the table also reports how much of the
// traffic was served before vs after the async B-CSF upgrade, so the
// serve-then-upgrade amortization story is visible in one row.
//
// Traffic arrives in waves (--batch requests per wave, each drained
// before the next) rather than one burst, so the background upgrade task
// gets pool time mid-run exactly as it would under continuous load.
//
//   ./serve_throughput [--requests=N] [--batch=N] [--nnz=N] [--rank=R]
//                      [--threads=1,2,4,8] [--threshold=N] [--format=bcsf]
#include "bench_util.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#include <sstream>

int main(int argc, char** argv) {
  using namespace bcsf;
  using namespace bcsf::bench;
  const CliParser cli(argc, argv);
  const int requests = static_cast<int>(cli.get_int("requests", 512));
  const int batch_size = static_cast<int>(cli.get_int("batch", 64));
  const offset_t nnz = static_cast<offset_t>(cli.get_int("nnz", 200000));
  const rank_t rank = static_cast<rank_t>(cli.get_int("rank", kPaperRank));
  const double threshold = cli.get_double("threshold", requests / 4.0);
  const std::string upgrade = cli.get_string("format", "bcsf");

  std::vector<unsigned> thread_counts;
  {
    std::stringstream ss(cli.get_string("threads", "1,2,4,8"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      thread_counts.push_back(static_cast<unsigned>(std::stoul(tok)));
    }
  }

  print_header("Serving throughput -- requests/sec vs worker count",
               "async COO -> " + upgrade + " upgrade at " +
                   std::to_string(static_cast<long>(threshold)) + " calls");

  PowerLawConfig config;
  config.dims = {400, 600, 800};
  config.target_nnz = nnz;
  config.slice_alpha = 0.8;
  config.fiber_alpha = 0.8;
  config.max_fiber_len = 64;
  config.seed = 97;
  const SparseTensor base = generate_power_law(config);
  const auto factors = std::make_shared<const std::vector<DenseMatrix>>(
      make_random_factors(base.dims(), rank, 4242));
  std::cout << "tensor: " << base.shape_string() << ", nnz = " << base.nnz()
            << ", rank = " << rank << ", requests = " << requests << "\n\n";

  Table table({"workers", "req/s", "wall (ms)", "pre-upgrade", "post-upgrade",
               "final format"});
  for (unsigned workers : thread_counts) {
    ServeOptions opts;
    opts.workers = workers;
    opts.upgrade_format = upgrade;
    opts.upgrade_threshold = threshold;
    MttkrpService service(opts);
    service.register_tensor("bench", share_tensor(SparseTensor(base)));

    Timer timer;
    int pre = 0;
    int post = 0;
    for (int issued = 0; issued < requests;) {
      std::vector<MttkrpRequest> batch;
      batch.reserve(batch_size);
      for (int i = 0; i < batch_size && issued < requests; ++i, ++issued) {
        batch.push_back(
            {"bench", static_cast<index_t>(issued % base.order()), factors});
      }
      for (auto& future : service.submit_batch(std::move(batch))) {
        (future.get().upgraded ? post : pre)++;
      }
    }
    service.wait_idle();
    const double seconds = timer.seconds();

    table.row(workers, static_cast<long>(requests / seconds),
              seconds * 1e3, pre, post, service.current_format("bench", 0));
  }
  table.print();
  return 0;
}
