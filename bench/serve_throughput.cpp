// Serving-layer throughput: requests/sec through MttkrpService as the
// worker pool grows (DESIGN.md §5-§6).  Each run fires a fixed request
// load (round-robin over modes, shared factor set) at a fresh service and
// times admission-to-drain; the table also reports per-request latency
// percentiles and how much of the traffic was served before vs after the
// async B-CSF upgrade, so the serve-then-upgrade amortization story is
// visible in one row.
//
// Traffic arrives in waves (--batch requests per wave, each drained
// before the next) rather than one burst, so the background upgrade task
// gets pool time mid-run exactly as it would under continuous load.
// With --update-every=N an additive COO update batch is applied every N
// requests, exercising the snapshot/delta/compaction path of §6; the
// compaction count and final snapshot version land in the output.
//
// --json <path> additionally writes the machine-readable result record
// described by bench/schema/BENCH_serve.schema.json (the perf-trajectory
// format; BENCH_serve.json at the repo root is a committed baseline).
//
//   ./serve_throughput [--requests=N] [--batch=N] [--nnz=N] [--rank=R]
//                      [--threads=1,2,4,8] [--threshold=N] [--format=bcsf]
//                      [--update-every=N] [--update-nnz=N] [--json=path]
#include "bench_util.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

namespace {

/// Percentile over a copy (nearest-rank on the sorted sample).
double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct RunRow {
  unsigned workers = 0;
  double req_per_s = 0.0;
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int pre_upgrade = 0;
  int post_upgrade = 0;
  std::string final_format;
  std::uint64_t compactions = 0;
  std::uint64_t final_version = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bcsf;
  using namespace bcsf::bench;
  const CliParser cli(argc, argv);
  const int requests = static_cast<int>(cli.get_int("requests", 512));
  const int batch_size = static_cast<int>(cli.get_int("batch", 64));
  const offset_t nnz = static_cast<offset_t>(cli.get_int("nnz", 200000));
  const rank_t rank = static_cast<rank_t>(cli.get_int("rank", kPaperRank));
  const double threshold = cli.get_double("threshold", requests / 4.0);
  const std::string upgrade = cli.get_string("format", "bcsf");
  const int update_every = static_cast<int>(cli.get_int("update-every", 0));
  const offset_t update_nnz =
      static_cast<offset_t>(cli.get_int("update-nnz", 2000));
  const std::string json_path = cli.get_string("json", "");

  std::vector<unsigned> thread_counts;
  {
    std::stringstream ss(cli.get_string("threads", "1,2,4,8"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      thread_counts.push_back(static_cast<unsigned>(std::stoul(tok)));
    }
  }

  print_header("Serving throughput -- requests/sec vs worker count",
               "async COO -> " + upgrade + " upgrade at " +
                   std::to_string(static_cast<long>(threshold)) + " calls" +
                   (update_every > 0
                        ? ", update every " + std::to_string(update_every) +
                              " requests"
                        : ""));

  PowerLawConfig config;
  config.dims = {400, 600, 800};
  config.target_nnz = nnz;
  config.slice_alpha = 0.8;
  config.fiber_alpha = 0.8;
  config.max_fiber_len = 64;
  config.seed = 97;
  const SparseTensor base = generate_power_law(config);
  const auto factors = std::make_shared<const std::vector<DenseMatrix>>(
      make_random_factors(base.dims(), rank, 4242));
  std::cout << "tensor: " << base.shape_string() << ", nnz = " << base.nnz()
            << ", rank = " << rank << ", requests = " << requests << "\n\n";

  std::mt19937 update_rng(4711);
  std::vector<RunRow> rows;
  Table table({"workers", "req/s", "wall (ms)", "p50 (ms)", "p99 (ms)",
               "pre-upgrade", "post-upgrade", "final format", "compactions"});
  for (unsigned workers : thread_counts) {
    ServeOptions opts;
    opts.workers = workers;
    opts.upgrade_format = upgrade;
    opts.upgrade_threshold = threshold;
    MttkrpService service(opts);
    service.register_tensor("bench", share_tensor(SparseTensor(base)));

    using clock = std::chrono::steady_clock;
    Timer timer;
    RunRow row;
    row.workers = workers;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<std::size_t>(requests));
    for (int issued = 0; issued < requests;) {
      std::vector<MttkrpRequest> batch;
      batch.reserve(batch_size);
      for (int i = 0; i < batch_size && issued < requests; ++i, ++issued) {
        if (update_every > 0 && issued > 0 && issued % update_every == 0) {
          SparseTensor updates(base.dims());
          std::vector<index_t> coords(base.dims().size());
          for (offset_t z = 0; z < update_nnz; ++z) {
            for (std::size_t m = 0; m < coords.size(); ++m) {
              coords[m] = static_cast<index_t>(update_rng() % base.dims()[m]);
            }
            updates.push_back(coords, 1.0F);
          }
          service.apply_updates("bench", std::move(updates));
        }
        batch.push_back(
            {"bench", static_cast<index_t>(issued % base.order()), factors});
      }
      const clock::time_point submitted = clock::now();
      for (auto& future : service.submit_batch(std::move(batch))) {
        (future.get().upgraded ? row.post_upgrade : row.pre_upgrade)++;
        latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(clock::now() - submitted)
                .count());
      }
    }
    service.wait_idle();
    const double seconds = timer.seconds();

    row.req_per_s = requests / seconds;
    row.wall_ms = seconds * 1e3;
    row.p50_ms = percentile(latencies_ms, 50.0);
    row.p99_ms = percentile(latencies_ms, 99.0);
    row.final_format = service.current_format("bench", 0);
    row.compactions = service.compaction_count("bench");
    row.final_version = service.snapshot_version("bench");
    table.row(row.workers, static_cast<long>(row.req_per_s), row.wall_ms,
              row.p50_ms, row.p99_ms, row.pre_upgrade, row.post_upgrade,
              row.final_format, static_cast<long>(row.compactions));
    rows.push_back(row);
  }
  table.print();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"schema\": \"BENCH_serve/v1\",\n"
        << "  \"bench\": \"serve_throughput\",\n"
        << "  \"config\": {\n"
        << "    \"requests\": " << requests << ",\n"
        << "    \"batch\": " << batch_size << ",\n"
        << "    \"nnz\": " << base.nnz() << ",\n"
        << "    \"rank\": " << rank << ",\n"
        << "    \"upgrade_format\": \"" << upgrade << "\",\n"
        << "    \"upgrade_threshold\": " << threshold << ",\n"
        << "    \"update_every\": " << update_every << ",\n"
        << "    \"update_nnz\": " << update_nnz << "\n"
        << "  },\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const RunRow& r = rows[i];
      out << "    {\"workers\": " << r.workers
          << ", \"req_per_s\": " << r.req_per_s
          << ", \"wall_ms\": " << r.wall_ms << ", \"p50_ms\": " << r.p50_ms
          << ", \"p99_ms\": " << r.p99_ms
          << ", \"pre_upgrade\": " << r.pre_upgrade
          << ", \"post_upgrade\": " << r.post_upgrade
          << ", \"final_format\": \"" << r.final_format << "\""
          << ", \"compactions\": " << r.compactions
          << ", \"final_version\": " << r.final_version << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
