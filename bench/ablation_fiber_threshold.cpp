// Ablation (§VI-B): the fiber-split threshold.  "We empirically find that
// a fiber threshold of 128 provides the best performance."  Sweeps the
// threshold over the two fiber-heavy tensors (darpa, nell2) and reports
// B-CSF GFLOPs; too small a threshold floods the device with segments
// (overhead), too large leaves warps imbalanced.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Ablation -- fbr-split threshold sweep (mode 1, B-CSF)",
               "paper's empirical optimum: 128");

  const DeviceModel device = DeviceModel::p100();
  Table table({"tensor", "threshold", "fiber segments", "GFLOPs", "occ %",
               "sm_eff %"});

  for (const std::string& name :
       {std::string("darpa"), std::string("nell2"), std::string("nell1")}) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);
    const CsfTensor csf = build_csf(x, 0);
    for (offset_t threshold : {8u, 32u, 128u, 512u, 2048u, 8192u}) {
      BcsfOptions opts;
      opts.fiber_threshold = threshold;
      const BcsfTensor b = build_bcsf_from_csf(csf, opts);
      const SimReport rep = mttkrp_bcsf_gpu(b, factors, device).report;
      table.row(name, std::to_string(threshold),
                std::to_string(b.num_fiber_segments()), rep.gflops,
                rep.achieved_occupancy_pct, rep.sm_efficiency_pct);
    }
  }
  table.print();
  std::cout << "\nExpected shape: an interior optimum near the paper's 128 "
               "(hump-shaped curves).\n";
  return 0;
}
