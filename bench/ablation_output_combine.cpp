// Ablation: per-fiber vs per-slice output combining in the B-CSF kernel
// (a design choice Algorithm 3 leaves open: its lines 12-13 update Y per
// fiber, SPLATT's CPU code accumulates per slice).  Per-slice combining
// trades one output-row touch per *fiber* for one per *block* plus a
// shared reduction -- a win when fibers vastly outnumber slices.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Ablation -- B-CSF output combining (mode 1)",
               "per-fiber Y updates (Alg. 3) vs per-slice shared "
               "accumulation");

  const DeviceModel device = DeviceModel::p100();
  Table table({"tensor", "fibers/slice", "per-fiber GF", "per-slice GF",
               "per-slice/per-fiber"});

  for (const std::string& name : three_order_dataset_names()) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);
    const BcsfTensor b = build_bcsf(x, 0);
    const double fps = static_cast<double>(b.num_fiber_segments()) /
                       static_cast<double>(b.csf().num_slices());
    const double per_fiber =
        mttkrp_bcsf_gpu(b, factors, device, OutputCombine::kPerFiber)
            .report.gflops;
    const double per_slice =
        mttkrp_bcsf_gpu(b, factors, device, OutputCombine::kPerSliceShared)
            .report.gflops;
    table.row(name, fps, per_fiber, per_slice, per_slice / per_fiber);
  }
  table.print();
  std::cout << "\nExpected shape: per-slice combining helps most where "
               "fibers/slice is large (many Y touches saved), and is "
               "neutral on singleton-fiber tensors.\n";
  return 0;
}
