// Figure 13: HB-CSF speedup over HiCOO on the CPU (paper average ~17x).
#include "speedup_common.hpp"

int main() {
  return bcsf::bench::run_speedup_figure("Figure 13 -- HB-CSF vs HiCOO-CPU",
                                         bcsf::bench::hicoo_baseline(), 17.0);
}
