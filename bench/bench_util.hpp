// Shared helpers for the paper-reproduction benchmark binaries: a
// process-wide cache of generated dataset twins, random factors, and
// fixed-width table printing so every binary emits paper-style rows.
#pragma once

#include <cmath>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bcsf/bcsf.hpp"

namespace bcsf::bench {

/// Generates (once per process) and returns the scaled twin of a dataset.
inline const SparseTensor& twin(const std::string& name) {
  static std::map<std::string, SparseTensor> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, generate_dataset(name)).first;
  }
  return it->second;
}

/// Random factors for a dataset twin (cached per dataset+rank).
inline const std::vector<DenseMatrix>& factors_for(const std::string& name,
                                                   rank_t rank = 32) {
  static std::map<std::string, std::vector<DenseMatrix>> cache;
  const std::string key = name + "/" + std::to_string(rank);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, make_random_factors(twin(name).dims(), rank, 4242))
             .first;
  }
  return it->second;
}

/// The paper uses R = 32 for all experiments (§VI-A).
inline constexpr rank_t kPaperRank = 32;

// ---------------------------------------------------------------------------
// Table printing
// ---------------------------------------------------------------------------

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> r;
    (r.push_back(fmt(cells)), ...);
    rows_.push_back(std::move(r));
  }

  /// Pre-formatted row for callers whose column count is only known at
  /// run time (e.g. one column per registered format).
  void row_cells(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      os << "| ";
      for (std::size_t c = 0; c < width.size(); ++c) {
        os << std::setw(static_cast<int>(width[c])) << std::left
           << (c < cells.size() ? cells[c] : "") << " | ";
      }
      os << "\n";
    };
    line(headers_);
    std::vector<std::string> dashes;
    for (std::size_t w : width) dashes.push_back(std::string(w, '-'));
    line(dashes);
    for (const auto& r : rows_) line(r);
  }

 private:
  template <typename T>
  static std::string fmt(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      if (v != 0.0 && (std::abs(v) < 0.01 || std::abs(v) >= 1e6)) {
        os << std::scientific << std::setprecision(2) << v;
      } else {
        os << std::fixed << std::setprecision(2) << v;
      }
      return os.str();
    } else if constexpr (std::is_same_v<T, std::string> ||
                         std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(std::max(x, 1e-30));
  return std::exp(acc / static_cast<double>(xs.size()));
}

inline void print_header(const std::string& title, const std::string& note) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << note << "\n"
            << "==========================================================\n";
}

}  // namespace bcsf::bench
