// Figure 11: HB-CSF speedup over SPLATT-CPU with tiling enabled, all
// datasets, all modes (paper average ~35x; tiling often *hurts* SPLATT on
// these tensors, which is why this gap exceeds Fig. 12's).
#include "speedup_common.hpp"

int main() {
  return bcsf::bench::run_speedup_figure(
      "Figure 11 -- HB-CSF vs SPLATT-CPU-tiled",
      bcsf::bench::splatt_baseline(true), 35.0);
}
