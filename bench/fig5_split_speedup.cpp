// Figure 5: mode-1 GFLOPs of the CSF-family kernel with (a) no splitting,
// (b) fbr-split only, (c) fbr-split + slc-split (= full B-CSF), on the
// seven 3-order tensors.  The paper's headline: darpa gains 22x because it
// has the worst per-slice imbalance.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Figure 5 -- B-CSF node splitting (mode 1, simulated P100)",
               "fiber threshold 128, block capacity 512 (the paper's "
               "empirical best)");

  Table table({"tensor", "none GF", "fbr-split GF", "fbr+slc GF",
               "speedup fbr", "speedup fbr+slc", "split fibers",
               "split slices"});
  const DeviceModel device = DeviceModel::p100();

  for (const std::string& name : three_order_dataset_names()) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);
    const CsfTensor csf = build_csf(x, 0);

    auto run_with = [&](bool fbr, bool slc) {
      BcsfOptions opts;
      opts.fiber_split = fbr;
      opts.slice_split = slc;
      const BcsfTensor b = build_bcsf_from_csf(csf, opts);
      return std::make_pair(mttkrp_bcsf_gpu(b, factors, device).report,
                            std::make_pair(b.split_fiber_count(),
                                           b.split_slice_count()));
    };
    const auto [none, none_info] = run_with(false, false);
    const auto [fbr, fbr_info] = run_with(true, false);
    const auto [both, both_info] = run_with(true, true);

    table.row(name, none.gflops, fbr.gflops, both.gflops,
              fbr.gflops / none.gflops, both.gflops / none.gflops,
              std::to_string(both_info.first),
              std::to_string(both_info.second));
  }
  table.print();
  std::cout << "\nExpected shape: darpa benefits the most (paper: 22x); "
               "tensors with singleton fibers (flick, fr_m, fr_s)\ngain "
               "little from fbr-split alone.\n";
  return 0;
}
