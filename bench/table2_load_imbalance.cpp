// Table II: performance and load-imbalance metrics for the *plain* GPU-CSF
// kernel on the seven 3-order tensors (mode 1, R = 32) -- the measurements
// that motivate B-CSF.  Columns mirror the paper: GFLOPs, achieved
// occupancy, sm_efficiency, L2 hit rate, and the stddev of nonzeros per
// slice / per fiber; each measured value is printed beside the published
// P100 number.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Table II -- GPU-CSF load imbalance (simulated P100, mode 1)",
               "paper values in parentheses; twins are ~1/100-scale "
               "synthetic replicas (see DESIGN.md)");

  Table table({"tensor", "GFLOPs (paper)", "occ % (paper)", "sm_eff % (paper)",
               "L2 % (paper)", "stdev nnz/slc (paper)",
               "stdev nnz/fbr (paper)"});

  for (const std::string& name : three_order_dataset_names()) {
    const DatasetSpec& spec = dataset_spec(name);
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);

    const CsfTensor csf = build_csf(x, 0);
    const GpuMttkrpResult res =
        mttkrp_csf_gpu(csf, factors, DeviceModel::p100());
    const ModeStats stats = compute_mode_stats(x, 0);

    const TableIIRef& ref = *spec.table2;
    auto cell = [](double measured, double paper) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(1) << measured << " (" << paper
         << ")";
      return os.str();
    };
    table.row(name, cell(res.report.gflops, ref.gflops),
              cell(res.report.achieved_occupancy_pct,
                   ref.achieved_occupancy_pct),
              cell(res.report.sm_efficiency_pct, ref.sm_efficiency_pct),
              cell(res.report.l2_hit_rate_pct, ref.l2_hit_rate_pct),
              cell(stats.nnz_per_slice.stddev, ref.stdev_nnz_per_slice),
              cell(stats.nnz_per_fiber.stddev, ref.stdev_nnz_per_fiber));
  }
  table.print();
  std::cout << "\nExpected shape: deli fastest; nell2 and darpa slowest with "
               "the lowest occupancy/sm_efficiency;\nthe stddev columns drive "
               "the ranking (inter-block imbalance from heavy slices, "
               "inter-warp from heavy fibers).\n";
  return 0;
}
