// Figure 7: SPLATT's CSF "scales poorly on short modes"; B-CSF's splitting
// resolves that.  For each 3-order tensor we find the shortest and the
// longest mode and report GFLOPs for (a) SPLATT-CSF on the modeled 28-core
// Broadwell and (b) B-CSF on the simulated P100.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Figure 7 -- shortest vs longest mode (SPLATT-CSF CPU model "
               "vs B-CSF simulated P100)",
               "short modes have few slices, starving SPLATT's "
               "slice-level parallelism");

  const DeviceModel device = DeviceModel::p100();
  const CpuModel cpu = CpuModel::broadwell();
  Table table({"tensor", "which", "mode", "dim", "SPLATT GF", "B-CSF GF",
               "B-CSF/SPLATT"});

  for (const std::string& name : three_order_dataset_names()) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);

    index_t shortest = 0;
    index_t longest = 0;
    for (index_t m = 1; m < x.order(); ++m) {
      if (x.dim(m) < x.dim(shortest)) shortest = m;
      if (x.dim(m) > x.dim(longest)) longest = m;
    }
    for (const auto& [label, mode] :
         {std::make_pair(std::string("shortest"), shortest),
          std::make_pair(std::string("longest"), longest)}) {
      const CsfTensor csf = build_csf(x, mode);
      const CpuEstimate splatt = estimate_splatt(csf, kPaperRank, cpu,
                                                 /*tiled=*/false);
      const BcsfTensor b = build_bcsf_from_csf(csf, BcsfOptions{});
      const SimReport rep = mttkrp_bcsf_gpu(b, factors, device).report;
      table.row(name, label, static_cast<int>(mode),
                std::to_string(x.dim(mode)), splatt.gflops, rep.gflops,
                rep.gflops / splatt.gflops);
    }
  }
  table.print();
  std::cout << "\nExpected shape: B-CSF sustains comparable GFLOPs on both "
               "extremes, while SPLATT collapses on short modes\n(fr_m/fr_s "
               "mode 3 has only a few hundred slices for 28 threads).\n";
  return 0;
}
