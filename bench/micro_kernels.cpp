// google-benchmark microbenchmarks of the host-side building blocks:
// format construction and the real CPU kernels.  These measure actual
// wall time on this machine (unlike the simulated-GPU figures) and are
// the numbers a downstream user cares about for preprocessing budgets.
#include <benchmark/benchmark.h>

#include "bcsf/bcsf.hpp"

namespace {

using namespace bcsf;

const SparseTensor& bench_tensor() {
  static const SparseTensor x = [] {
    PowerLawConfig cfg;
    cfg.dims = {4000, 8000, 6000};
    cfg.target_nnz = 400'000;
    cfg.slice_alpha = 0.7;
    cfg.fiber_alpha = 0.9;
    cfg.max_fiber_len = 1024;
    cfg.seed = 777;
    return generate_power_law(cfg);
  }();
  return x;
}

const std::vector<DenseMatrix>& bench_factors() {
  static const std::vector<DenseMatrix> f =
      make_random_factors(bench_tensor().dims(), 32, 123);
  return f;
}

void BM_BuildCsf(benchmark::State& state) {
  const SparseTensor& x = bench_tensor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_csf(x, 0));
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_BuildCsf)->Unit(benchmark::kMillisecond);

void BM_BuildBcsf(benchmark::State& state) {
  const SparseTensor& x = bench_tensor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_bcsf(x, 0));
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_BuildBcsf)->Unit(benchmark::kMillisecond);

void BM_BuildHbcsf(benchmark::State& state) {
  const SparseTensor& x = bench_tensor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_hbcsf(x, 0));
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_BuildHbcsf)->Unit(benchmark::kMillisecond);

void BM_BuildFcoo(benchmark::State& state) {
  const SparseTensor& x = bench_tensor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_fcoo(x, 0));
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_BuildFcoo)->Unit(benchmark::kMillisecond);

void BM_BuildHicoo(benchmark::State& state) {
  const SparseTensor& x = bench_tensor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_hicoo(x));
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_BuildHicoo)->Unit(benchmark::kMillisecond);

void BM_MttkrpCsfCpu(benchmark::State& state) {
  const CsfTensor csf = build_csf(bench_tensor(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mttkrp_csf_cpu(csf, bench_factors()));
  }
  state.SetItemsProcessed(state.iterations() * csf.nnz());
}
BENCHMARK(BM_MttkrpCsfCpu)->Unit(benchmark::kMillisecond);

void BM_MttkrpCooCpu(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mttkrp_coo_cpu(bench_tensor(), 0, bench_factors()));
  }
  state.SetItemsProcessed(state.iterations() * bench_tensor().nnz());
}
BENCHMARK(BM_MttkrpCooCpu)->Unit(benchmark::kMillisecond);

void BM_MttkrpHicooCpu(benchmark::State& state) {
  const HicooTensor h = build_hicoo(bench_tensor());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mttkrp_hicoo_cpu(h, 0, bench_factors()));
  }
  state.SetItemsProcessed(state.iterations() * h.nnz());
}
BENCHMARK(BM_MttkrpHicooCpu)->Unit(benchmark::kMillisecond);

void BM_SimulateBcsfKernel(benchmark::State& state) {
  const BcsfTensor b = build_bcsf(bench_tensor(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mttkrp_bcsf_gpu(b, bench_factors(), DeviceModel::p100()));
  }
  state.SetItemsProcessed(state.iterations() * b.nnz());
}
BENCHMARK(BM_SimulateBcsfKernel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
