// Figure 9: pre-processing time of B-CSF, HB-CSF and SPLATT-tiled,
// normalized to SPLATT-nontiled.  All four are real wall-clock format
// constructions over all modes (ALLMODE keeps one representation per
// mode).  B-CSF's extra pass over the CSF arrays is nearly free; HB-CSF's
// slice classification costs more; SPLATT's tiling adds a reorder pass.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Figure 9 -- pre-processing time relative to SPLATT-nontiled",
               "wall-clock construction of all-mode representations");

  Table table({"tensor", "splatt-nt (s)", "splatt-tiled x", "B-CSF x",
               "HB-CSF x"});

  for (const std::string& name : three_order_dataset_names()) {
    const SparseTensor& x = twin(name);

    const SplattAllmode splatt_nt(x, SplattOptions{.tiling = false});
    const SplattAllmode splatt_t(x, SplattOptions{.tiling = true});

    Timer t_b;
    for (index_t m = 0; m < x.order(); ++m) (void)build_bcsf(x, m);
    const double bcsf_s = t_b.seconds();

    Timer t_h;
    for (index_t m = 0; m < x.order(); ++m) (void)build_hbcsf(x, m);
    const double hbcsf_s = t_h.seconds();

    const double base = splatt_nt.preprocessing_seconds();
    table.row(name, base, splatt_t.preprocessing_seconds() / base,
              bcsf_s / base, hbcsf_s / base);
  }
  table.print();
  std::cout << "\nExpected shape: B-CSF within ~2x of SPLATT-nontiled "
               "(\"negligible preprocessing\"); HB-CSF somewhat above B-CSF "
               "(slice classification + three builds).\n";
  return 0;
}
