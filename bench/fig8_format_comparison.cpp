// Figure 8: ParTI-COO-GPU vs B-CSF vs HB-CSF in mode 1.  The paper's
// point: plain COO beats even optimized B-CSF on tensors whose slices are
// tiny and whose fibers are singletons (flick-3d, fr_s) because CSF's
// machinery is pure overhead there -- and HB-CSF wins everywhere by
// routing each slice population to the right representation.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Figure 8 -- ParTI-COO vs B-CSF vs HB-CSF (mode 1, simulated "
               "P100)",
               "R = 32; HB-CSF group sizes shown to explain the wins");

  const DeviceModel device = DeviceModel::p100();
  Table table({"tensor", "COO GF", "B-CSF GF", "HB-CSF GF", "best",
               "hb: coo/csl/csf nnz %"});

  for (const std::string& name : three_order_dataset_names()) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);

    const SimReport coo = mttkrp_coo_gpu(x, 0, factors, device).report;
    const BcsfTensor b = build_bcsf(x, 0);
    const SimReport bc = mttkrp_bcsf_gpu(b, factors, device).report;
    const HbcsfTensor h = build_hbcsf(x, 0);
    const SimReport hb = mttkrp_hbcsf_gpu(h, factors, device).report;

    const double m = static_cast<double>(h.nnz());
    std::ostringstream mix;
    mix << std::fixed << std::setprecision(0) << 100.0 * h.coo_nnz() / m << "/"
        << 100.0 * h.csl_nnz() / m << "/" << 100.0 * h.csf_nnz() / m;
    const char* best = hb.gflops >= bc.gflops && hb.gflops >= coo.gflops
                           ? "HB-CSF"
                           : (bc.gflops >= coo.gflops ? "B-CSF" : "COO");
    table.row(name, coo.gflops, bc.gflops, hb.gflops, std::string(best),
              mix.str());
  }
  table.print();
  std::cout << "\nExpected shape: COO > B-CSF on flick-3d / fr_s / fr_m "
               "(singleton fibers, tiny slices); HB-CSF best or tied "
               "everywhere.\n";
  return 0;
}
