// Figure 8: every registered GPU format head-to-head in mode 1.  The
// paper's point: plain COO beats even optimized B-CSF on tensors whose
// slices are tiny and whose fibers are singletons (flick-3d, fr_s)
// because CSF's machinery is pure overhead there -- and HB-CSF wins
// everywhere by routing each slice population to the right
// representation.
//
// The format list comes from the FormatRegistry: a newly registered GPU
// format shows up as a column with no change here.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Figure 8 -- GPU formats head-to-head (mode 1, simulated P100)",
               "R = 32; columns enumerate the FormatRegistry catalogue");

  const std::vector<std::string> formats =
      FormatRegistry::instance().names(PlanKind::kGpu);

  std::vector<std::string> headers{"tensor"};
  for (const std::string& f : formats) {
    headers.push_back(FormatRegistry::instance().at(f).display_name + " GF");
  }
  headers.push_back("best");
  headers.push_back("best notes");
  Table table(headers);

  PlanOptions opts;
  opts.device = DeviceModel::p100();

  for (const std::string& name : three_order_dataset_names()) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);

    std::vector<std::string> cells{name};
    double best_gf = -1.0;
    std::string best_name = "?";
    std::string best_notes;
    for (const std::string& f : formats) {
      const PlanPtr plan = FormatRegistry::instance().create(f, x, 0, opts);
      const SimReport rep = plan->run(factors).report;
      std::ostringstream gf;
      gf << std::fixed << std::setprecision(2) << rep.gflops;
      cells.push_back(gf.str());
      if (rep.gflops > best_gf) {
        best_gf = rep.gflops;
        best_name = plan->display_name();
        best_notes = plan->detail();
      }
    }
    cells.push_back(best_name);
    cells.push_back(best_notes);
    table.row_cells(std::move(cells));
  }
  table.print();
  std::cout << "\nExpected shape: COO > B-CSF on flick-3d / fr_s / fr_m "
               "(singleton fibers, tiny slices); HB-CSF best or tied "
               "everywhere.\n";
  return 0;
}
