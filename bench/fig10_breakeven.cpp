// Figure 10: how many CPD iterations until B-CSF / HB-CSF beat
// SPLATT-nontiled *including* pre-processing time.  One iteration performs
// MTTKRP over every mode (Alg. 1); the GPU side uses simulated kernel
// seconds plus its measured build time, the CPU side the Broadwell model
// plus its measured build time.  Breakeven n* solves
//   build_gpu + n * iter_gpu  <=  build_cpu + n * iter_cpu.
#include "bench_util.hpp"

int main() {
  using namespace bcsf;
  using namespace bcsf::bench;
  print_header("Figure 10 -- iterations to outperform SPLATT-nontiled",
               "includes pre-processing; per-iteration = all-mode MTTKRP");

  const DeviceModel device = DeviceModel::p100();
  const CpuModel cpu = CpuModel::broadwell();
  Table table({"tensor", "iter cpu (ms)", "iter bcsf (ms)", "iter hbcsf (ms)",
               "breakeven B-CSF", "breakeven HB-CSF"});

  for (const std::string& name : three_order_dataset_names()) {
    const SparseTensor& x = twin(name);
    const auto& factors = factors_for(name);

    double cpu_build = 0.0;
    double cpu_iter = 0.0;
    double bcsf_build = 0.0;
    double bcsf_iter = 0.0;
    double hbcsf_build = 0.0;
    double hbcsf_iter = 0.0;

    for (index_t m = 0; m < x.order(); ++m) {
      Timer t0;
      const CsfTensor csf = build_csf(x, m);
      cpu_build += t0.seconds();
      cpu_iter += estimate_splatt(csf, kPaperRank, cpu, false).seconds;

      Timer t1;
      const BcsfTensor b = build_bcsf_from_csf(csf, BcsfOptions{});
      bcsf_build += t1.seconds() + t0.seconds();
      bcsf_iter += mttkrp_bcsf_gpu(b, factors, device).report.seconds;

      Timer t2;
      const HbcsfTensor h = build_hbcsf(x, m);
      hbcsf_build += t2.seconds();
      hbcsf_iter += mttkrp_hbcsf_gpu(h, factors, device).report.seconds;
    }

    auto breakeven = [&](double build, double iter) -> std::string {
      if (iter >= cpu_iter) return "never";
      const double n = (build - cpu_build) / (cpu_iter - iter);
      return std::to_string(
          static_cast<long>(std::max(1.0, std::ceil(n))));
    };
    table.row(name, cpu_iter * 1e3, bcsf_iter * 1e3, hbcsf_iter * 1e3,
              breakeven(bcsf_build, bcsf_iter),
              breakeven(hbcsf_build, hbcsf_iter));
  }
  table.print();
  std::cout << "\nExpected shape: single-digit breakevens for most tensors "
               "(B-CSF's cheap preprocessing amortizes almost immediately; "
               "CPD runs for tens of iterations in practice).\n";
  return 0;
}
