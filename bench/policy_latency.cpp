// Planning-latency comparison (DESIGN.md §12): the exact §V policy
// rescans the tensor -- sort + slice/fiber walk, O(nnz log nnz) -- every
// time a format decision is made, while the sketch-backed overload reads
// O(S) streaming-sketch state.  This bench sweeps tensor sizes and times
// both paths on identical inputs, so the headline claims are measurable
// in one table: sketched planning latency stays FLAT as nnz grows, and
// at the largest size the win is >= 10x (both held by CI jq gates over
// the JSON record).
//
// Per size the bench reports, per decision (one auto_select_format call,
// averaged over all modes x --reps repetitions):
//   exact_ms   -- the exact policy on the raw tensor
//   sketch_ms  -- the sketch overload on a prebuilt TensorSketch
//   build_ms   -- one-time sketch construction cost (amortized across
//                 every later decision, re-decision and kStats query;
//                 paid where the serving layer already scans: register
//                 and compaction)
// plus whether the two paths chose the same format on every mode (the
// parity tests hold this with tolerance; here it is informational).
//
//   ./policy_latency [--nnz=50000,200000,800000] [--reps=N] [--json=path]
#include "bench_util.hpp"
#include "core/auto_policy.hpp"
#include "tensor/sketch.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::vector<bcsf::offset_t> parse_sizes(const std::string& spec) {
  std::vector<bcsf::offset_t> sizes;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    sizes.push_back(static_cast<bcsf::offset_t>(std::stoul(tok)));
  }
  return sizes;
}

struct SizeRow {
  bcsf::offset_t nnz = 0;
  double exact_ms = 0.0;   // per decision
  double sketch_ms = 0.0;  // per decision
  double build_ms = 0.0;   // one-time sketch build
  double speedup = 0.0;
  int decisions = 0;
  bool formats_agree = true;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);
  const std::vector<offset_t> sizes =
      parse_sizes(cli.get_string("nnz", "50000,200000,800000"));
  const int reps = static_cast<int>(cli.get_int("reps", 20));
  const std::string json_path = cli.get_string("json", "");

  bench::print_header(
      "Planning latency: exact O(nnz) policy vs streaming sketches",
      "per-decision auto_select_format wall time; sketch column must stay "
      "flat across sizes (DESIGN.md §12)");

  bench::Table table({"nnz", "exact (ms)", "sketch (ms)", "build (ms)",
                      "speedup", "agree"});
  std::vector<SizeRow> rows;
  // Accumulated so the optimizer cannot discard the timed decisions.
  double sink = 0.0;

  for (offset_t nnz : sizes) {
    PowerLawConfig config;
    config.dims = {static_cast<index_t>(nnz / 100), 400, 300};
    config.target_nnz = nnz;
    config.slice_alpha = 1.2;
    config.seed = 7;
    const SparseTensor tensor = generate_power_law(config);

    SizeRow row;
    row.nnz = tensor.nnz();

    Timer build_timer;
    const TensorSketch sketch = TensorSketch::build(tensor);
    row.build_ms = build_timer.milliseconds();

    const AutoPolicyOptions policy;
    for (index_t mode = 0; mode < tensor.order(); ++mode) {
      const AutoDecision exact = auto_select_format(tensor, mode, policy);
      const AutoDecision approx = auto_select_format(sketch, mode, policy);
      if (approx.format != exact.format) row.formats_agree = false;
    }

    Timer exact_timer;
    for (int r = 0; r < reps; ++r) {
      for (index_t mode = 0; mode < tensor.order(); ++mode) {
        sink += auto_select_format(tensor, mode, policy).coo_slice_fraction;
        ++row.decisions;
      }
    }
    const double exact_total = exact_timer.milliseconds();

    Timer sketch_timer;
    for (int r = 0; r < reps; ++r) {
      for (index_t mode = 0; mode < tensor.order(); ++mode) {
        sink += auto_select_format(sketch, mode, policy).coo_slice_fraction;
      }
    }
    const double sketch_total = sketch_timer.milliseconds();

    row.exact_ms = exact_total / row.decisions;
    row.sketch_ms = sketch_total / row.decisions;
    row.speedup = row.sketch_ms > 0.0 ? row.exact_ms / row.sketch_ms : 0.0;
    table.row(static_cast<long>(row.nnz), row.exact_ms, row.sketch_ms,
              row.build_ms, row.speedup, row.formats_agree ? "yes" : "NO");
    rows.push_back(row);
  }
  table.print();
  std::cout << "(sink " << sink << ")\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"schema\": \"BENCH_policy/v1\",\n"
        << "  \"bench\": \"policy_latency\",\n"
        << "  \"config\": {\"reps\": " << reps << "},\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SizeRow& r = rows[i];
      out << "    {\"nnz\": " << r.nnz << ", \"exact_ms\": " << r.exact_ms
          << ", \"sketch_ms\": " << r.sketch_ms
          << ", \"build_ms\": " << r.build_ms
          << ", \"speedup\": " << r.speedup
          << ", \"decisions\": " << r.decisions << ", \"formats_agree\": "
          << (r.formats_agree ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
