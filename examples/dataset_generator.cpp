// Utility scenario: materialize the paper's dataset twins as `.tns` files
// so they can be fed to other tools (or back into this library's
// `--tns=` options), plus free-form power-law generation.
//
// Usage:
//   dataset_generator --out=DIR [--dataset=deli | --all]
//   dataset_generator --out=DIR --dims=1000x2000x500 --nnz=100000
//       [--slice-alpha=1.2] [--fiber-alpha=1.5] [--seed=42]
#include <iostream>
#include <sstream>

#include "bcsf/bcsf.hpp"

namespace {

std::vector<bcsf::index_t> parse_dims(const std::string& s) {
  std::vector<bcsf::index_t> dims;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, 'x')) {
    dims.push_back(static_cast<bcsf::index_t>(std::stoul(part)));
  }
  return dims;
}

void dump(const bcsf::SparseTensor& x, const std::string& path) {
  bcsf::write_tns_file(path, x);
  std::cout << "wrote " << path << ": " << x.shape_string() << ", nnz "
            << x.nnz() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);
  const std::string out = cli.get_string("out", ".");

  if (cli.has("dims")) {
    PowerLawConfig cfg;
    cfg.dims = parse_dims(cli.get_string("dims", ""));
    cfg.target_nnz = static_cast<offset_t>(cli.get_int("nnz", 100'000));
    cfg.slice_alpha = cli.get_double("slice-alpha", 1.2);
    cfg.fiber_alpha = cli.get_double("fiber-alpha", 1.5);
    cfg.max_fiber_len =
        static_cast<offset_t>(cli.get_int("max-fiber-len", 1024));
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    dump(generate_power_law(cfg), out + "/custom.tns");
    return 0;
  }

  if (cli.get_bool("all", false)) {
    for (const DatasetSpec& spec : paper_datasets()) {
      dump(generate_dataset(spec), out + "/" + spec.name + ".tns");
    }
    return 0;
  }

  const std::string name = cli.get_string("dataset", "uber");
  dump(generate_dataset(name), out + "/" + name + ".tns");
  return 0;
}
