// Domain scenario: discussion tracking in an email corpus.
//
// The paper's introduction motivates tensors with exactly this workload:
// "the attributes of an email conversation (subject, author and time) can
// be represented by the use of a tensor" (and [6] tracks discussions in
// the Enron corpus with PARAFAC).  This example builds a synthetic
// sender x recipient x week tensor with a few implanted communication
// "topics" (dense sender/recipient cliques active in certain weeks), runs
// CPD-ALS with the HB-CSF GPU backend, and prints the dominant
// senders/recipients/weeks of each recovered component.
//
// Usage: cpd_email [--rank=8] [--iters=20] [--seed=3]
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bcsf/bcsf.hpp"

namespace {

using namespace bcsf;

/// Builds the email tensor: background noise plus `topics` implanted
/// cliques, each with its own week-activity window.
SparseTensor build_email_tensor(index_t senders, index_t recipients,
                                index_t weeks, unsigned topics,
                                std::uint64_t seed) {
  Rng rng(seed);
  SparseTensor t({senders, recipients, weeks});
  std::vector<index_t> c(3);

  // Background chatter (uniform random, low weight).
  for (int z = 0; z < 20000; ++z) {
    c = {rng.uniform_index(senders), rng.uniform_index(recipients),
         rng.uniform_index(weeks)};
    t.push_back(c, static_cast<value_t>(rng.uniform_real(0.1, 0.4)));
  }

  // Topics: clique of ~12 senders x ~15 recipients, active ~8 weeks.
  for (unsigned topic = 0; topic < topics; ++topic) {
    const index_t s0 = rng.uniform_index(senders - 12);
    const index_t r0 = rng.uniform_index(recipients - 15);
    const index_t w0 = rng.uniform_index(weeks - 8);
    for (int z = 0; z < 4000; ++z) {
      c = {static_cast<index_t>(s0 + rng.uniform_index(12)),
           static_cast<index_t>(r0 + rng.uniform_index(15)),
           static_cast<index_t>(w0 + rng.uniform_index(8))};
      t.push_back(c, static_cast<value_t>(rng.uniform_real(2.0, 5.0)));
    }
  }
  t.coalesce();
  return t;
}

void print_top(const DenseMatrix& factor, rank_t component, const char* label,
               int k = 3) {
  std::vector<index_t> idx(factor.rows());
  std::iota(idx.begin(), idx.end(), index_t{0});
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](index_t a, index_t b) {
                      return factor(a, component) > factor(b, component);
                    });
  std::cout << "    top " << label << ":";
  for (int i = 0; i < k; ++i) std::cout << " " << idx[i];
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);
  CpdOptions opts;
  opts.rank = static_cast<rank_t>(cli.get_int("rank", 8));
  opts.max_iterations = static_cast<unsigned>(cli.get_int("iters", 20));
  opts.format = cli.get_string("format", "hbcsf");
  opts.seed = 11;

  const SparseTensor x =
      build_email_tensor(400, 500, 52, 4, cli.get_int("seed", 3));
  std::cout << "email tensor (sender x recipient x week): "
            << x.shape_string() << ", nnz=" << x.nnz() << "\n";

  const CpdResult r = cpd_als(x, opts);
  std::cout << "CPD-ALS: " << r.iterations << " iterations, final fit "
            << r.final_fit << "\n"
            << "preprocessing " << r.preprocessing_seconds * 1e3
            << " ms (host), simulated GPU MTTKRP time "
            << r.simulated_mttkrp_seconds * 1e3 << " ms\n\n";

  // Rank components sorted by weight = strongest conversations.
  std::vector<rank_t> comp(opts.rank);
  std::iota(comp.begin(), comp.end(), rank_t{0});
  std::sort(comp.begin(), comp.end(),
            [&](rank_t a, rank_t b) { return r.lambda[a] > r.lambda[b]; });
  const unsigned show = std::min<unsigned>(4, opts.rank);
  for (unsigned i = 0; i < show; ++i) {
    std::cout << "component " << comp[i] << " (weight " << r.lambda[comp[i]]
              << "):\n";
    print_top(r.factors[0], comp[i], "senders");
    print_top(r.factors[1], comp[i], "recipients");
    print_top(r.factors[2], comp[i], "weeks");
  }
  std::cout << "\n(each strong component should align with one implanted "
               "sender/recipient clique and its active weeks)\n";
  return 0;
}
