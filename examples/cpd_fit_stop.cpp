// CPD-ALS converging via the FIT op (DESIGN.md §7): the fit is evaluated
// each iteration through the plan layer's FIT operation -- the residual
// inner product <X, Xhat> runs on the SAME built structure as the MTTKRP
// sweeps -- and iteration stops as soon as the improvement drops below
// the tolerance, instead of burning a fixed iteration budget.
//
// The demo decomposes an exactly low-rank tensor (so ALS converges fast
// and the early stop is obvious), prints the per-iteration fit history,
// and shows how many of the allowed iterations were actually used.
//
// Usage:
//   cpd_fit_stop [--format=cpu-csf] [--rank=4] [--max-iters=40]
//                [--tolerance=1e-3]
#include <cstdlib>
#include <iostream>

#include "bcsf/bcsf.hpp"

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);

  CpdOptions opts;
  opts.format = cli.get_string("format", "cpu-csf");
  opts.rank = static_cast<rank_t>(cli.get_int("rank", 4));
  opts.max_iterations = static_cast<unsigned>(cli.get_int("max-iters", 40));
  opts.fit_tolerance = cli.get_double("tolerance", 1e-3);
  opts.device = DeviceModel::p100();

  // Dense sampling of an exact rank-4 CP model: ALS should push the fit
  // toward 1 within a handful of iterations, then the FIT-based stop
  // fires long before max_iterations.
  const std::vector<index_t> dims = {30, 24, 18};
  const SparseTensor x =
      generate_low_rank(dims, 4, 30 * 24 * 18, /*noise=*/0.0F, /*seed=*/7);
  std::cout << "tensor: " << x.shape_string() << ", nnz=" << x.nnz()
            << "  (dense sample of an exact rank-4 model)\n"
            << "backend: " << opts.format << ", rank " << opts.rank
            << ", tolerance " << opts.fit_tolerance << ", at most "
            << opts.max_iterations << " iterations\n\n";

  const CpdResult result = cpd_als(x, opts);

  std::cout << "fit history (evaluated via the FIT op each iteration):\n";
  for (std::size_t i = 0; i < result.fit_history.size(); ++i) {
    const double fit = result.fit_history[i];
    const double gain = i == 0 ? fit : fit - result.fit_history[i - 1];
    std::cout << "  iter " << (i + 1) << ": fit = " << fit
              << (i == 0 ? "" : gain < opts.fit_tolerance
                                    ? "  (gain below tolerance -> stop)"
                                    : "")
              << "\n";
  }
  std::cout << "\nconverged after " << result.iterations << " of "
            << opts.max_iterations << " allowed iterations, final fit "
            << result.final_fit << "\n"
            << "preprocessing " << result.preprocessing_seconds * 1e3
            << " ms amortized over MTTKRP sweeps AND fit evaluations\n";

  if (result.iterations >= opts.max_iterations) {
    std::cout << "(no early stop -- tighten --tolerance or raise "
                 "--max-iters)\n";
  }
  return EXIT_SUCCESS;
}
