// Quickstart: the smallest complete use of the library.
//
// Generates (or loads) a 3-order sparse tensor, builds the HB-CSF format
// for mode 1, runs the simulated GPU MTTKRP, and prints the output shape
// plus the simulator's performance report.
//
// Usage:
//   quickstart [--tns=path/to/tensor.tns] [--mode=0] [--rank=32]
#include <iostream>

#include "bcsf/bcsf.hpp"

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);
  const auto mode = static_cast<index_t>(cli.get_int("mode", 0));
  const auto rank = static_cast<rank_t>(cli.get_int("rank", 32));

  SparseTensor x = [&] {
    const std::string path = cli.get_string("tns", "");
    if (!path.empty()) return read_tns_file(path);
    PowerLawConfig cfg;
    cfg.dims = {2000, 4000, 3000};
    cfg.target_nnz = 200'000;
    cfg.slice_alpha = 0.7;
    cfg.fiber_alpha = 0.9;
    cfg.max_fiber_len = 512;
    return generate_power_law(cfg);
  }();
  std::cout << "tensor: " << x.shape_string() << ", nnz=" << x.nnz()
            << ", density=" << x.density() << "\n";

  // Factor matrices (as inside one CPD-ALS iteration).
  const auto factors = make_random_factors(x.dims(), rank, 42);

  // The paper's format: classify slices into COO / CSL / B-CSF groups.
  const HbcsfTensor hb = build_hbcsf(x, mode);
  std::cout << hb.summary() << "\n";

  // Run the simulated-P100 kernel; output == MTTKRP result.
  const GpuMttkrpResult res =
      mttkrp_hbcsf_gpu(hb, factors, DeviceModel::p100());
  std::cout << "output: " << res.output.rows() << " x " << res.output.cols()
            << " matrix\n"
            << "sim:    " << res.report.to_string() << "\n";

  // Cross-check against the sequential reference.
  const DenseMatrix ref = mttkrp_reference(x, mode, factors);
  std::cout << "max |diff| vs reference: " << ref.max_abs_diff(res.output)
            << "\n";
  return 0;
}
