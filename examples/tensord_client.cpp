// tensord walkthrough (DESIGN.md §9): the serving stack behind a socket.
//
// Starts an in-process TensorServer on a unix-domain socket (so the
// example is self-contained -- point --socket at a running tensord to
// drive that instead), connects a TensorClient, and walks the protocol:
// register a tensor, query it, stream an update batch, query again (the
// response names the new snapshot version), ping, then ask the server to
// shut down gracefully.
//
//   ./tensord_client [--socket=/path/to/tensord.sock] [--nnz=20000]
//                    [--rank=8] [--queries=12] [--record=PATH]
#include <iostream>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "bcsf/bcsf.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);
  const offset_t nnz = static_cast<offset_t>(cli.get_int("nnz", 20000));
  const rank_t rank = static_cast<rank_t>(cli.get_int("rank", 8));
  const int queries = static_cast<int>(cli.get_int("queries", 12));

  // Self-contained by default: spin up the daemon in-process.
  std::optional<net::TensorServer> server;
  std::string socket_path = cli.get_string("socket", "");
  if (socket_path.empty()) {
    net::ServerOptions sopts;
    sopts.unix_path = "/tmp/tensord_client_example.sock";
    sopts.serve.workers = 4;
    sopts.serve.shards = 2;
    sopts.serve.upgrade_threshold = 4;
    sopts.record_path = cli.get_string("record", "");
    server.emplace(std::move(sopts));
    socket_path = server->unix_path();
    std::cout << "started in-process tensord on " << socket_path << "\n";
  }

  PowerLawConfig config;
  config.dims = {120, 180, 240};
  config.target_nnz = nnz;
  config.seed = 7;
  SparseTensor x = generate_power_law(config);
  const std::vector<index_t> dims = x.dims();
  const std::vector<DenseMatrix> factors =
      make_random_factors(dims, rank, 21);

  net::TensorClient client(socket_path);
  client.ping();
  client.register_tensor("demo", x);
  std::cout << "registered 'demo' " << x.shape_string() << " (" << x.nnz()
            << " nnz)\n";

  // Queries are pipelined: fire them all, then collect in order.
  std::vector<std::future<net::Frame>> in_flight;
  for (int q = 0; q < queries; ++q) {
    net::QueryMsg msg;
    msg.tensor = "demo";
    msg.mode = static_cast<index_t>(q % dims.size());
    msg.op = OpKind::kMttkrp;
    msg.factors = factors;
    in_flight.push_back(client.query_async(std::move(msg)));
  }
  int retried = 0;
  for (int q = 0; q < queries; ++q) {
    net::ResultMsg res;
    try {
      res = net::TensorClient::result_of(in_flight[q].get());
    } catch (const net::OverloadedError&) {
      // kOverloaded is a retryable reject by contract: the server
      // refused to QUEUE the query, it did not fail it.  A synchronous
      // re-issue paces the client to the server's drain rate.
      ++retried;
      net::QueryMsg again;
      again.tensor = "demo";
      again.mode = static_cast<index_t>(q % dims.size());
      again.op = OpKind::kMttkrp;
      again.factors = factors;
      res = client.query(std::move(again));
    }
    if (q == 0 || q == queries - 1) {
      std::cout << "query " << res.sequence << ": mode "
                << (q % dims.size()) << ", " << res.output.rows() << "x"
                << res.output.cols() << " result, format "
                << res.served_format << ", " << res.shards << " shard(s)"
                << (res.upgraded ? ", upgraded" : "") << "\n";
    }
  }
  if (retried > 0) {
    std::cout << retried << " quer" << (retried == 1 ? "y" : "ies")
              << " bounced off admission control and succeeded on retry\n";
  }

  // Stream an additive update batch and observe the version move.
  SparseTensor updates(dims);
  std::mt19937 rng(99);
  std::vector<index_t> coords(dims.size());
  for (int z = 0; z < 1500; ++z) {
    for (std::size_t m = 0; m < dims.size(); ++m) {
      coords[m] = static_cast<index_t>(rng() % dims[m]);
    }
    updates.push_back(coords, 0.5F);
  }
  const std::uint64_t version = client.apply_updates("demo", updates);
  std::cout << "applied 1500-nnz update batch -> snapshot version "
            << version << "\n";

  net::QueryMsg after;
  after.tensor = "demo";
  after.mode = 0;
  after.factors = factors;
  const net::ResultMsg res = client.query(std::move(after));
  std::cout << "post-update query: snapshot version " << res.snapshot_version
            << ", delta nnz " << res.delta_nnz << "\n";

  if (server) {
    client.shutdown_server();
    server->wait();
    server->stop();
    const auto stats = server->stats();
    std::cout << "server drained: " << stats.requests << " requests, "
              << stats.rejected << " rejected\n";
  }
  return 0;
}
