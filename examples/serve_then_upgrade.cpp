// Serve-then-upgrade walkthrough (DESIGN.md §5): stand up an
// MttkrpService, register a tensor, and watch the amortization story
// play out -- early requests are answered instantly from the
// zero-preprocessing COO plan, the Fig-10 break-even count trips a
// background B-CSF build, and later requests ride the structured plan
// with no caller ever blocking on preprocessing.
//
//   ./serve_then_upgrade [--nnz=40000] [--rank=16] [--waves=6]
//                        [--wave-size=8] [--threshold=12]
#include <iostream>
#include <memory>
#include <vector>

#include "bcsf/bcsf.hpp"

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);
  const offset_t nnz = static_cast<offset_t>(cli.get_int("nnz", 40000));
  const rank_t rank = static_cast<rank_t>(cli.get_int("rank", 16));
  const int waves = static_cast<int>(cli.get_int("waves", 6));
  const int wave_size = static_cast<int>(cli.get_int("wave-size", 8));
  const double threshold = cli.get_double("threshold", 12);

  PowerLawConfig config;
  config.dims = {200, 300, 400};
  config.target_nnz = nnz;
  config.slice_alpha = 0.8;
  config.fiber_alpha = 0.8;
  config.max_fiber_len = 48;
  config.seed = 7;
  SparseTensor x = generate_power_law(config);
  const auto factors = std::make_shared<const std::vector<DenseMatrix>>(
      make_random_factors(x.dims(), rank, 42));
  const DenseMatrix truth = mttkrp_reference(x, 0, *factors);

  ServeOptions opts;
  opts.workers = 4;
  opts.initial_format = "coo";   // answer from request #1, zero build
  opts.upgrade_format = "auto";  // let the §V policy pick the structure
  opts.upgrade_threshold = threshold;
  MttkrpService service(opts);

  std::cout << "Registering " << x.shape_string() << " (" << x.nnz()
            << " nnz); serving mode-0 MTTKRP, upgrade after " << threshold
            << " calls.\n\n";
  service.register_tensor("demo", share_tensor(std::move(x)));

  for (int wave = 0; wave < waves; ++wave) {
    std::vector<MttkrpRequest> batch(
        static_cast<std::size_t>(wave_size),
        MttkrpRequest{"demo", 0, factors});
    auto futures = service.submit_batch(std::move(batch));

    int upgraded = 0;
    double max_err = 0.0;
    std::string formats;
    for (auto& future : futures) {
      MttkrpResponse r = future.get();
      if (r.upgraded) ++upgraded;
      max_err = std::max(max_err, truth.max_abs_diff(r.output));
      if (formats.find(r.served_format) == std::string::npos) {
        if (!formats.empty()) formats += "+";
        formats += r.served_format;
      }
    }
    std::cout << "wave " << wave << ": served by " << formats << "  ("
              << upgraded << "/" << wave_size
              << " post-upgrade, max |err| vs reference = " << max_err
              << ")\n";
  }

  service.wait_idle();
  std::cout << "\nFinal state: format = " << service.current_format("demo", 0)
            << ", upgraded = " << (service.upgraded("demo", 0) ? "yes" : "no")
            << ", calls served = " << service.call_count("demo") << "\n";
  return 0;
}
