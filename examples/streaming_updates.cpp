// Streaming-updates walkthrough (DESIGN.md §6): serve MTTKRP queries
// from a tensor that grows WHILE being served.  Each round interleaves a
// wave of queries with an additive COO update batch; responses keep
// answering instantly (base plan + delta sweep), every response names
// the snapshot version it computed, and once the delta outgrows the
// threshold a background compaction folds it into a new base -- after
// which the upgrade policy re-runs and the structured plan re-lands,
// with no caller ever blocked.
//
//   ./streaming_updates [--nnz=30000] [--rank=16] [--rounds=8]
//                       [--wave-size=6] [--update-nnz=2500]
//                       [--compact-threshold=0.25]
#include <iostream>
#include <memory>
#include <random>
#include <vector>

#include "bcsf/bcsf.hpp"

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);
  const offset_t nnz = static_cast<offset_t>(cli.get_int("nnz", 30000));
  const rank_t rank = static_cast<rank_t>(cli.get_int("rank", 16));
  const int rounds = static_cast<int>(cli.get_int("rounds", 8));
  const int wave_size = static_cast<int>(cli.get_int("wave-size", 6));
  const offset_t update_nnz =
      static_cast<offset_t>(cli.get_int("update-nnz", 2500));
  const double compact_threshold =
      cli.get_double("compact-threshold", 0.25);

  PowerLawConfig config;
  config.dims = {150, 250, 350};
  config.target_nnz = nnz;
  config.slice_alpha = 0.8;
  config.fiber_alpha = 0.8;
  config.max_fiber_len = 48;
  config.seed = 13;
  SparseTensor x = generate_power_law(config);
  const std::vector<index_t> dims = x.dims();
  const auto factors = std::make_shared<const std::vector<DenseMatrix>>(
      make_random_factors(dims, rank, 42));

  ServeOptions opts;
  opts.workers = 4;
  opts.initial_format = "coo";
  opts.upgrade_format = "auto";
  opts.upgrade_threshold = 8;
  opts.compact_threshold = compact_threshold;
  opts.compact_min_nnz = 1024;
  MttkrpService service(opts);

  std::cout << "Serving " << x.shape_string() << " (" << x.nnz()
            << " nnz) while it grows: " << rounds << " rounds of "
            << wave_size << " queries + one " << update_nnz
            << "-nnz update batch, compaction at delta fraction "
            << compact_threshold << ".\n\n";
  service.register_tensor("live", share_tensor(std::move(x)));

  std::mt19937 rng(777);
  for (int round = 0; round < rounds; ++round) {
    std::vector<MttkrpRequest> wave(
        static_cast<std::size_t>(wave_size),
        MttkrpRequest{"live", 0, factors});
    auto futures = service.submit_batch(std::move(wave));

    SparseTensor updates(dims);
    std::vector<index_t> coords(dims.size());
    for (offset_t z = 0; z < update_nnz; ++z) {
      for (std::size_t m = 0; m < dims.size(); ++m) {
        coords[m] = static_cast<index_t>(rng() % dims[m]);
      }
      updates.push_back(coords, 1.0F);
    }
    const std::uint64_t version =
        service.apply_updates("live", std::move(updates));

    std::string formats;
    std::uint64_t min_version = ~0ULL;
    std::uint64_t max_version = 0;
    offset_t max_delta = 0;
    for (auto& future : futures) {
      MttkrpResponse r = future.get();
      min_version = std::min(min_version, r.snapshot_version);
      max_version = std::max(max_version, r.snapshot_version);
      max_delta = std::max(max_delta, r.delta_nnz);
      if (formats.find(r.served_format) == std::string::npos) {
        if (!formats.empty()) formats += "+";
        formats += r.served_format;
      }
    }
    std::cout << "round " << round << ": served by " << formats
              << ", snapshot versions " << min_version << ".." << max_version
              << " (now " << version << "), delta swept up to " << max_delta
              << " nnz, delta fraction "
              << service.delta_fraction("live") << ", compactions "
              << service.compaction_count("live") << "\n";
  }

  service.wait_idle();
  const TensorSnapshot snap = service.snapshot("live");
  std::cout << "\nFinal state: version " << snap.version << ", base "
            << snap.base->nnz() << " nnz (base version " << snap.base_version
            << ") + " << snap.deltas.size() << " delta chunks ("
            << snap.delta_nnz << " nnz), compactions "
            << service.compaction_count("live") << ", mode-0 format "
            << service.current_format("live", 0) << ".\n";

  // Spot-check the final snapshot against the sequential reference.
  const SparseTensor merged = snap.merged(/*coalesce=*/true);
  const DenseMatrix truth = mttkrp_reference(merged, 0, *factors);
  const MttkrpResponse last = service.submit({"live", 0, factors}).get();
  std::cout << "max |err| of a fresh query vs reference on the merged "
            << "tensor: " << truth.max_abs_diff(last.output) << "\n";
  return 0;
}
