// Domain scenario: pick the right format for *your* tensor.
//
// Loads a FROSTT `.tns` file (or one of the paper's dataset twins) and,
// per mode, prints the structural statistics the paper's analysis is
// built on, then every format registered in the FormatRegistry: its index
// storage, build time, and simulated-P100 GFLOPs -- ending with the
// measured best and the `auto` policy's a-priori recommendation (§V
// binning + Fig-10 break-even), so you can see whether the model picks
// the measured winner.
//
// Usage: format_explorer [--tns=path] [--dataset=deli] [--rank=32]
#include <iostream>

#include "bcsf/bcsf.hpp"

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);
  const auto rank = static_cast<rank_t>(cli.get_int("rank", 32));

  SparseTensor x = [&] {
    const std::string path = cli.get_string("tns", "");
    if (!path.empty()) return read_tns_file(path);
    return generate_dataset(cli.get_string("dataset", "darpa"));
  }();
  std::cout << "tensor: " << x.shape_string() << ", nnz=" << x.nnz()
            << ", density=" << x.density() << "\n\n";

  const auto factors = make_random_factors(x.dims(), rank, 1);
  const FormatRegistry& registry = FormatRegistry::instance();
  PlanOptions opts;
  opts.device = DeviceModel::p100();

  for (index_t mode = 0; mode < x.order(); ++mode) {
    const ModeStats s = compute_mode_stats(x, mode);
    std::cout << "--- mode " << mode + 1 << " (dim " << x.dim(mode) << ")\n"
              << "  slices " << s.num_slices << ", fibers " << s.num_fibers
              << ", nnz/slice mean " << s.nnz_per_slice.mean << " stddev "
              << s.nnz_per_slice.stddev << ", nnz/fiber mean "
              << s.nnz_per_fiber.mean << " stddev " << s.nnz_per_fiber.stddev
              << "\n  slice mix: " << 100.0 * s.singleton_slice_fraction
              << "% singleton (COO), " << 100.0 * s.csl_slice_fraction
              << "% all-singleton-fiber (CSL)\n";

    double best_gf = 0.0;
    std::string best = "?";
    for (const std::string& name : registry.names(PlanKind::kGpu)) {
      const PlanPtr plan = registry.create(name, x, mode, opts);
      const PlanRunResult r = plan->run(factors);
      std::cout << "  " << plan->display_name() << ": "
                << r.report.gflops << " GFLOPs (occ "
                << r.report.achieved_occupancy_pct << "%, sm_eff "
                << r.report.sm_efficiency_pct << "%), index "
                << plan->storage_bytes() / 1e6 << " MB, build "
                << plan->build_seconds() * 1e3 << " ms";
      if (!plan->detail().empty()) std::cout << " [" << plan->detail() << "]";
      std::cout << "\n";
      if (r.report.gflops > best_gf) {
        best_gf = r.report.gflops;
        best = plan->display_name();
      }
    }
    const AutoDecision rec = auto_select_format(s);
    std::cout << "  => measured best for mode " << mode + 1 << ": " << best
              << "\n  => auto policy: " << rec.to_string() << "\n\n";
  }
  return 0;
}
