// Domain scenario: pick the right format for *your* tensor.
//
// Loads a FROSTT `.tns` file (or one of the paper's dataset twins) and,
// per mode, prints the structural statistics the paper's analysis is
// built on, the index storage of every format, and the simulated-P100
// GFLOPs for each kernel -- ending with a recommendation, i.e. the
// decision HB-CSF automates per slice.
//
// Usage: format_explorer [--tns=path] [--dataset=deli] [--rank=32]
#include <iostream>

#include "bcsf/bcsf.hpp"

int main(int argc, char** argv) {
  using namespace bcsf;
  const CliParser cli(argc, argv);
  const auto rank = static_cast<rank_t>(cli.get_int("rank", 32));

  SparseTensor x = [&] {
    const std::string path = cli.get_string("tns", "");
    if (!path.empty()) return read_tns_file(path);
    return generate_dataset(cli.get_string("dataset", "darpa"));
  }();
  std::cout << "tensor: " << x.shape_string() << ", nnz=" << x.nnz()
            << ", density=" << x.density() << "\n\n";

  const auto factors = make_random_factors(x.dims(), rank, 1);
  const DeviceModel device = DeviceModel::p100();

  for (index_t mode = 0; mode < x.order(); ++mode) {
    const ModeStats s = compute_mode_stats(x, mode);
    std::cout << "--- mode " << mode + 1 << " (dim " << x.dim(mode) << ")\n"
              << "  slices " << s.num_slices << ", fibers " << s.num_fibers
              << ", nnz/slice mean " << s.nnz_per_slice.mean << " stddev "
              << s.nnz_per_slice.stddev << ", nnz/fiber mean "
              << s.nnz_per_fiber.mean << " stddev " << s.nnz_per_fiber.stddev
              << "\n  slice mix: " << 100.0 * s.singleton_slice_fraction
              << "% singleton (COO), " << 100.0 * s.csl_slice_fraction
              << "% all-singleton-fiber (CSL)\n";

    std::cout << "  storage (index MB): COO "
              << coo_storage(x).bytes / 1e6 << ", CSF "
              << csf_storage(x, mode).bytes / 1e6 << ", HB-CSF "
              << hbcsf_storage(x, mode).bytes / 1e6 << ", F-COO "
              << fcoo_storage(x, mode).bytes / 1e6 << "\n";

    double best_gf = 0.0;
    const char* best = "?";
    for (GpuKernelKind kind :
         {GpuKernelKind::kCsf, GpuKernelKind::kBcsf, GpuKernelKind::kHbcsf,
          GpuKernelKind::kCoo, GpuKernelKind::kFcoo}) {
      GpuRunOptions opts;
      opts.device = device;
      const TimedGpuResult r = build_and_run(kind, x, mode, factors, opts);
      std::cout << "  " << kind_name(kind) << ": " << r.run.report.gflops
                << " GFLOPs (occ " << r.run.report.achieved_occupancy_pct
                << "%, sm_eff " << r.run.report.sm_efficiency_pct
                << "%), build " << r.build_seconds * 1e3 << " ms\n";
      if (r.run.report.gflops > best_gf) {
        best_gf = r.run.report.gflops;
        best = kind_name(kind);
      }
    }
    std::cout << "  => best for mode " << mode + 1 << ": " << best << "\n\n";
  }
  return 0;
}
